// OnlineDetector edge cases: eviction-strategy equivalence, finish()
// idempotence, and timestamp-tie / timeout-boundary behavior. These pin
// the semantics the differential oracle relies on (strict `gap >
// timeout` splits, alert at the exact threshold-crossing record).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/online.hpp"

namespace quicsand::core {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;
constexpr util::Duration kTimeout = 5 * util::kMinute;

PacketRecord response_record(util::Timestamp t, std::uint32_t src) {
  PacketRecord record;
  record.timestamp = t;
  record.src = net::Ipv4Address(src);
  record.dst = net::Ipv4Address(0x2c000001);
  record.src_port = 443;
  record.dst_port = 40000;
  record.wire_size = 1200;
  record.cls = TrafficClass::kQuicResponse;
  record.quic_version = 1;
  return record;
}

struct Capture {
  std::vector<DetectedAttack> alerts;
  std::vector<DetectedAttack> attacks;

  void attach(OnlineDetector& detector) {
    detector.set_on_alert(
        [this](const DetectedAttack& a) { alerts.push_back(a); });
    detector.set_on_attack(
        [this](const DetectedAttack& a) { attacks.push_back(a); });
  }
};

/// A stream with attack bursts from rotating sources and long quiet
/// gaps, so both lazy (per-record) and sweep-driven eviction paths run.
std::vector<PacketRecord> churn_stream() {
  std::vector<PacketRecord> records;
  for (int burst = 0; burst < 6; ++burst) {
    const auto base = kT0 + burst * util::kHour;
    const auto src = 0xaa000000 + static_cast<std::uint32_t>(burst % 3);
    for (int i = 0; i < 200; ++i) {
      records.push_back(response_record(base + i * util::kSecond, src));
    }
    // Sub-threshold chatter from a second source inside each burst.
    for (int i = 0; i < 10; ++i) {
      records.push_back(
          response_record(base + (200 + i) * util::kSecond, 0xbb000000));
    }
  }
  return records;
}

TEST(OnlineEdge, LazyEvictionMatchesPeriodicSweep) {
  // Eviction timing (every record vs almost never) must not change what
  // is detected, only when sessions leave the table.
  OnlineDetectorConfig eager;
  eager.sweep_interval = util::kSecond;
  OnlineDetectorConfig lazy;
  lazy.sweep_interval = 365 * util::kDay;

  OnlineDetector a(eager), b(lazy);
  Capture ca, cb;
  ca.attach(a);
  cb.attach(b);
  for (const auto& record : churn_stream()) {
    a.consume(record);
    b.consume(record);
  }
  a.finish();
  b.finish();

  // Alerts fire in record order (identical); attacks close in eviction
  // order, which legitimately differs between the strategies.
  const auto sorted = [](std::vector<DetectedAttack> attacks) {
    std::sort(attacks.begin(), attacks.end(),
              [](const DetectedAttack& x, const DetectedAttack& y) {
                return std::tie(x.start, x.victim) <
                       std::tie(y.start, y.victim);
              });
    return attacks;
  };
  EXPECT_EQ(sorted(ca.attacks), sorted(cb.attacks));
  EXPECT_EQ(ca.alerts, cb.alerts);
  EXPECT_EQ(a.alerts_fired(), b.alerts_fired());
  EXPECT_EQ(a.attacks_closed(), b.attacks_closed());
  EXPECT_EQ(a.sessions_evicted(), b.sessions_evicted());
  EXPECT_DOUBLE_EQ(a.mean_alert_latency_s(), b.mean_alert_latency_s());
}

TEST(OnlineEdge, FinishIsIdempotent) {
  OnlineDetector detector({});
  Capture capture;
  capture.attach(detector);
  for (int i = 0; i < 200; ++i) {
    detector.consume(response_record(kT0 + i * util::kSecond, 0xcc000001));
  }
  detector.finish();
  const auto attacks_after_first = capture.attacks;
  const auto evicted_after_first = detector.sessions_evicted();
  EXPECT_EQ(attacks_after_first.size(), 1u);
  EXPECT_EQ(detector.open_sessions(), 0u);

  detector.finish();  // second finish: no sessions left, no new events
  EXPECT_EQ(capture.attacks, attacks_after_first);
  EXPECT_EQ(detector.sessions_evicted(), evicted_after_first);
  EXPECT_EQ(detector.attacks_closed(), 1u);
}

TEST(OnlineEdge, GapEqualToTimeoutStaysInSession) {
  // Session splitting is strict (`gap > timeout`): a record arriving
  // exactly `timeout` after the previous one continues the session; one
  // microsecond later starts a new one.
  for (const util::Duration extra : {util::Duration{0}, util::Duration{1}}) {
    OnlineDetectorConfig config;
    config.session_timeout = kTimeout;
    OnlineDetector detector(config);
    Capture capture;
    capture.attach(detector);

    // 100 packets over 99 s (above every threshold), then the gap.
    for (int i = 0; i < 100; ++i) {
      detector.consume(response_record(kT0 + i * util::kSecond, 0xdd000001));
    }
    const auto last = kT0 + 99 * util::kSecond;
    detector.consume(response_record(last + kTimeout + extra, 0xdd000001));
    detector.finish();

    ASSERT_EQ(capture.attacks.size(), 1u) << "extra " << extra.count();
    if (extra == util::Duration{}) {
      // Same session: the boundary record extends the attack.
      EXPECT_EQ(capture.attacks[0].end, last + kTimeout);
      EXPECT_EQ(capture.attacks[0].packets.count(), 101u);
      EXPECT_EQ(detector.sessions_evicted(), 1u);
    } else {
      // Split: the attack ends at the last pre-gap record; the stray
      // packet forms a separate below-threshold session.
      EXPECT_EQ(capture.attacks[0].end, last);
      EXPECT_EQ(capture.attacks[0].packets.count(), 100u);
      EXPECT_EQ(detector.sessions_evicted(), 2u);
    }
  }
}

TEST(OnlineEdge, EqualTimestampRunsDoNotAlertUntilDurationExceeded) {
  // A burst of records sharing one timestamp has zero duration no matter
  // its size: the alert must wait for the duration threshold, then fire
  // at the exact record that crosses it.
  OnlineDetector detector({});
  Capture capture;
  capture.attach(detector);

  for (int i = 0; i < 100; ++i) {
    detector.consume(response_record(kT0, 0xee000001));
  }
  EXPECT_EQ(detector.alerts_fired(), 0u);

  // Still at 60 s sharp: duration not strictly exceeded.
  detector.consume(response_record(kT0 + 60 * util::kSecond, 0xee000001));
  EXPECT_EQ(detector.alerts_fired(), 0u);

  detector.consume(
      response_record(kT0 + (60 * util::kSecond) + (util::kMicrosecond),
                      0xee000001));
  ASSERT_EQ(capture.alerts.size(), 1u);
  EXPECT_EQ(capture.alerts[0].end,
            kT0 + (60 * util::kSecond) + (util::kMicrosecond));
  EXPECT_EQ(capture.alerts[0].packets.count(), 102u);

  detector.finish();
  ASSERT_EQ(capture.attacks.size(), 1u);
  EXPECT_EQ(capture.attacks[0].packets.count(), 102u);
}

TEST(OnlineEdge, SweepAtExactTimeoutBoundaryKeepsSession) {
  // sweep() evicts on `now - end > timeout`, mirroring the split rule: a
  // session whose last record is exactly `timeout` old survives a sweep
  // triggered by other traffic and can still be extended.
  OnlineDetectorConfig config;
  config.session_timeout = kTimeout;
  config.sweep_interval = util::kSecond;
  OnlineDetector detector(config);
  Capture capture;
  capture.attach(detector);

  for (int i = 0; i < 100; ++i) {
    detector.consume(response_record(kT0 + i * util::kSecond, 0xaa000001));
  }
  const auto last = kT0 + 99 * util::kSecond;
  // Unrelated source triggers a sweep exactly at the boundary.
  detector.consume(response_record(last + kTimeout, 0xbb000002));
  EXPECT_EQ(detector.open_sessions(), 2u);
  // The original session is still extendable at the boundary.
  detector.consume(response_record(last + kTimeout, 0xaa000001));
  detector.finish();
  ASSERT_EQ(capture.attacks.size(), 1u);
  EXPECT_EQ(capture.attacks[0].packets.count(), 101u);
  EXPECT_EQ(capture.attacks[0].end, last + kTimeout);
}

}  // namespace
}  // namespace quicsand::core
