// Stage tracing: span lifetimes with an injected manual clock, nesting
// order (inner spans complete first), per-thread timeline ids, and the
// chrome://tracing JSON export format.
#include <gtest/gtest.h>

#include <thread>

#include "obs/trace.hpp"

namespace quicsand::obs {
namespace {

TEST(ObsTrace, SpanRecordsStartAndDuration) {
  std::uint64_t now = 0;
  Tracer tracer([&now] { return now; });
  {
    now = 10;
    Span span(&tracer, "stage");
    now = 25;
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "stage");
  EXPECT_EQ(events[0].start_us, 10u);
  EXPECT_EQ(events[0].duration_us, 15u);
  EXPECT_EQ(events[0].tid, 0u);
}

TEST(ObsTrace, NestedSpansCompleteInnerFirst) {
  std::uint64_t now = 0;
  Tracer tracer([&now] { return now; });
  {
    Span outer(&tracer, "outer");
    now = 5;
    {
      Span inner(&tracer, "inner");
      now = 7;
    }
    now = 10;
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].start_us, 5u);
  EXPECT_EQ(events[0].duration_us, 2u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].start_us, 0u);
  EXPECT_EQ(events[1].duration_us, 10u);
  // The inner span's interval nests inside the outer's.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
}

TEST(ObsTrace, ExplicitEndIsIdempotent) {
  std::uint64_t now = 0;
  Tracer tracer([&now] { return now; });
  Span span(&tracer, "once");
  now = 3;
  span.end();
  now = 99;
  span.end();  // no second event
  EXPECT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].duration_us, 3u);
}

TEST(ObsTrace, NullTracerSpanIsNoop) {
  Span span(nullptr, "nothing");
  span.end();  // must not crash
}

TEST(ObsTrace, MovedFromSpanDoesNotDoubleRecord) {
  std::uint64_t now = 0;
  Tracer tracer([&now] { return now; });
  {
    Span outer(&tracer, "moved");
    Span inner(std::move(outer));
    now = 4;
  }
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].duration_us, 4u);
}

TEST(ObsTrace, ThreadsGetDistinctSmallTids) {
  std::uint64_t now = 0;
  Tracer tracer([&now] { return now; });
  { Span span(&tracer, "main-thread"); }
  std::thread worker([&tracer] { Span span(&tracer, "worker"); });
  worker.join();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 0u);  // first appearance order
  EXPECT_EQ(events[1].tid, 1u);
}

TEST(ObsTrace, GoldenChromeJson) {
  std::uint64_t now = 0;
  Tracer tracer([&now] { return now; });
  {
    Span span(&tracer, "sessionize");
    now = 12;
  }
  EXPECT_EQ(tracer.to_chrome_json(),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"sessionize\", \"cat\": \"quicsand\", "
            "\"ph\": \"X\", \"ts\": 0, \"dur\": 12, \"pid\": 1, "
            "\"tid\": 0}\n"
            "]}\n");
  tracer.clear();
  EXPECT_EQ(tracer.to_chrome_json(), "{\"traceEvents\": []}\n");
}

}  // namespace
}  // namespace quicsand::obs
