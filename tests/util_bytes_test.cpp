#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace quicsand::util {
namespace {

TEST(ByteReader, ReadsBigEndianIntegers) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05,
                               0x06, 0x07, 0x08, 0x09};
  ByteReader r(data);
  EXPECT_EQ(r.read_u8(), 0x01);
  EXPECT_EQ(r.read_u16().to_host(), 0x0203);
  EXPECT_EQ(r.read_u24(), 0x040506);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.read_u8(), 0x07);
}

TEST(ByteReader, ReadU32AndU64) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x00,
                               0x00, 0x00, 0x00, 0x00, 0x00, 0x2a};
  ByteReader r(data);
  EXPECT_EQ(r.read_u32().to_host(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 42u);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ThrowsOnUnderflow) {
  const std::uint8_t data[] = {0x01};
  ByteReader r(data);
  EXPECT_THROW(r.read_u16(), BufferUnderflow);
  // Failed read must not consume anything.
  EXPECT_EQ(r.read_u8(), 0x01);
  EXPECT_THROW(r.read_u8(), BufferUnderflow);
}

TEST(ByteReader, PeekDoesNotConsume) {
  const std::uint8_t data[] = {0xab, 0xcd};
  ByteReader r(data);
  EXPECT_EQ(r.peek_u8(), 0xab);
  EXPECT_EQ(r.peek_u8(), 0xab);
  EXPECT_EQ(r.read_u16().to_host(), 0xabcd);
}

TEST(ByteReader, ReadBytesAndRest) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r(data);
  auto head = r.read_bytes(2);
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head[1], 2);
  auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ByteWriter w;
  w.write_u8(0x7f);
  w.write_u16(0xbeef);
  w.write_u32(123456789);
  w.write_u64(0x0123456789abcdefULL);
  ByteReader r(w.view());
  EXPECT_EQ(r.read_u8(), 0x7f);
  EXPECT_EQ(r.read_u16().to_host(), 0xbeef);
  EXPECT_EQ(r.read_u32().to_host(), 123456789u);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
}

TEST(ByteWriter, PatchBeOverwritesInPlace) {
  ByteWriter w;
  w.write_u32(0);
  w.write_u8(0xaa);
  w.patch_be(0, 0xcafe, 4);
  ByteReader r(w.view());
  EXPECT_EQ(r.read_u32().to_host(), 0xcafeu);
  EXPECT_EQ(r.read_u8(), 0xaa);
}

TEST(ByteWriter, PatchBeOutOfRangeThrows) {
  ByteWriter w;
  w.write_u16(0);
  EXPECT_THROW(w.patch_be(1, 0, 2), std::out_of_range);
}

TEST(ByteWriter, WriteRepeated) {
  ByteWriter w;
  w.write_repeated(0x00, 5);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.view()[4], 0x00);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(to_hex(data), "00ff10ab");
  auto back = from_hex("00ff10ab");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, AcceptsUpperCase) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Hex, RejectsMalformedInput) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_THROW(from_hex_strict("q0"), std::invalid_argument);
}

TEST(Hex, EmptyStringIsEmptyVector) {
  auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

}  // namespace
}  // namespace quicsand::util
