// Focused pipeline tests: hourly binning bounds, classifier corner
// cases, and the convenience accessors not exercised elsewhere.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "net/headers.hpp"
#include "quic/gquic.hpp"
#include "quic/packets.hpp"
#include "util/rng.hpp"

namespace quicsand::core {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

util::Rng& rng() {
  static util::Rng instance(7);
  return instance;
}

net::RawPacket quic_response_at(util::Timestamp t) {
  const auto ctx = quic::HandshakeContext::random(1, rng());
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(142, 250, 0, 9);
  ip.dst = net::Ipv4Address::from_octets(44, 0, 0, 1);
  return {t, net::build_udp(ip, 443, 40000,
                            quic::build_server_initial_handshake(
                                ctx, rng(), quic::CryptoFidelity::kFast))};
}

PipelineOptions one_day_options() {
  PipelineOptions options;
  options.window_start = kT0;
  options.days = 1;
  return options;
}

TEST(PipelineTest, HourlyBinsRespectWindowBounds) {
  Pipeline pipeline(one_day_options());
  pipeline.consume(quic_response_at(kT0));                      // hour 0
  pipeline.consume(quic_response_at(kT0 + 5 * util::kHour));    // hour 5
  pipeline.consume(quic_response_at(kT0 + 23 * util::kHour));   // hour 23
  pipeline.consume(quic_response_at(kT0 + 25 * util::kHour));   // outside
  pipeline.consume(quic_response_at(kT0 - util::kHour));        // outside

  const auto& hourly = pipeline.hourly();
  ASSERT_EQ(hourly.quic_responses.size(), 24u);
  EXPECT_EQ(hourly.quic_responses[0], 1u);
  EXPECT_EQ(hourly.quic_responses[5], 1u);
  EXPECT_EQ(hourly.quic_responses[23], 1u);
  std::uint64_t total = 0;
  for (const auto v : hourly.quic_responses) total += v;
  EXPECT_EQ(total, 3u);  // out-of-window packets not binned...
  EXPECT_EQ(pipeline.records().size(), 5u);  // ...but still recorded
}

TEST(PipelineTest, SourceAndDestPort443IsResponse) {
  // The paper finds no packets with both ports 443; ours classifies such
  // a packet as a response deterministically.
  Pipeline pipeline(one_day_options());
  const auto ctx = quic::HandshakeContext::random(1, rng());
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(142, 250, 0, 9);
  ip.dst = net::Ipv4Address::from_octets(44, 0, 0, 1);
  pipeline.consume({kT0, net::build_udp(
                             ip, 443, 443,
                             quic::build_client_initial(
                                 ctx, "x", rng(),
                                 quic::CryptoFidelity::kFast))});
  EXPECT_EQ(pipeline.stats().of(TrafficClass::kQuicResponse), 1u);
  EXPECT_EQ(pipeline.stats().of(TrafficClass::kQuicRequest), 0u);
}

TEST(PipelineTest, GquicBackscatterCountsAsQuicResponse) {
  Pipeline pipeline(one_day_options());
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(142, 250, 0, 9);
  ip.dst = net::Ipv4Address::from_octets(44, 0, 0, 1);
  pipeline.consume({kT0, net::build_udp(
                             ip, 443, 50000,
                             quic::build_gquic_server_response(
                                 quic::ConnectionId(rng().bytes(8)), 3, 200,
                                 rng()))});
  EXPECT_EQ(pipeline.stats().of(TrafficClass::kQuicResponse), 1u);
  const auto& record = pipeline.records().front();
  EXPECT_EQ(record.kind_counts[static_cast<std::size_t>(
                quic::QuicPacketKind::kGquic)],
            1);
}

TEST(PipelineTest, EmptyPipelineAccessors) {
  Pipeline pipeline(one_day_options());
  EXPECT_TRUE(pipeline.records().empty());
  EXPECT_TRUE(pipeline.request_sessions(util::kMinute).empty());
  const auto analysis = pipeline.analyze_attacks();
  EXPECT_TRUE(analysis.quic_attacks.empty());
  EXPECT_TRUE(analysis.common_attacks.empty());
  const util::Duration timeouts[] = {util::kMinute};
  const auto sweep = pipeline.session_timeout_sweep(timeouts);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep[0].second, 0u);
}

TEST(PipelineTest, AnalyzeWithCustomThresholds) {
  Pipeline pipeline(one_day_options());
  // 30 response packets over 2 minutes from one victim.
  for (int i = 0; i < 30; ++i) {
    pipeline.consume(quic_response_at(kT0 + i * 4 * util::kSecond));
  }
  const auto strict = pipeline.analyze_attacks(DosThresholds{}.weighted(5));
  EXPECT_TRUE(strict.quic_attacks.empty());
  const auto relaxed =
      pipeline.analyze_attacks(DosThresholds{}.weighted(0.2));
  EXPECT_EQ(relaxed.quic_attacks.size(), 1u);
}

TEST(SessionTest, DominantVersionWithNoVersions) {
  Session session;
  EXPECT_EQ(session.dominant_version(), 0u);
  session.version_counts[1] = 3;
  session.version_counts[0xff00001d] = 5;
  EXPECT_EQ(session.dominant_version(), 0xff00001du);
}

TEST(DetectedAttackTest, OverlapPredicate) {
  DetectedAttack a;
  a.start = kT0;
  a.end = kT0 + util::kMinute;
  DetectedAttack b;
  b.start = kT0 + (util::kMinute) - (util::kSecond);
  b.end = kT0 + util::kHour;
  EXPECT_TRUE(a.overlaps(b, util::kSecond));
  EXPECT_FALSE(a.overlaps(b, 2 * util::kSecond));
  b.start = a.end;
  EXPECT_FALSE(a.overlaps(b, util::kSecond));
}

}  // namespace
}  // namespace quicsand::core
