// LatencyHistogram: the log-linear geometry's relative-error bound, the
// merge-equals-single-recorder guarantee, and concurrent record/read
// safety (the tsan preset runs this binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/latency.hpp"
#include "util/rng.hpp"

namespace quicsand {
namespace {

using obs::LatencyHistogram;

TEST(LatencyGeometry, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 32; ++v) {
    const auto idx = LatencyHistogram::index_of(v);
    EXPECT_EQ(LatencyHistogram::bucket_lower(idx), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(idx), v);
    EXPECT_EQ(LatencyHistogram::bucket_representative(idx), v);
  }
}

TEST(LatencyGeometry, BucketsPartitionTheRange) {
  // Bucket edges tile u64 with no gap and no overlap: bucket i+1 starts
  // exactly one past bucket i's upper edge, and the last bucket ends at
  // the maximum value.
  const auto n = LatencyHistogram::bucket_count();
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), 0u);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(i) + 1,
              LatencyHistogram::bucket_lower(i + 1))
        << "gap or overlap after bucket " << i;
  }
  EXPECT_EQ(LatencyHistogram::bucket_upper(n - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LatencyGeometry, IndexOfRoundTripsEveryBucketEdge) {
  const auto n = LatencyHistogram::bucket_count();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(LatencyHistogram::index_of(LatencyHistogram::bucket_lower(i)),
              i);
    EXPECT_EQ(LatencyHistogram::index_of(LatencyHistogram::bucket_upper(i)),
              i);
    const auto rep = LatencyHistogram::bucket_representative(i);
    EXPECT_GE(rep, LatencyHistogram::bucket_lower(i));
    EXPECT_LE(rep, LatencyHistogram::bucket_upper(i));
  }
}

TEST(LatencyGeometry, RepresentativeErrorBoundHoldsEverywhere) {
  // The documented guarantee: reconstructing any value >= 32 from its
  // bucket representative errs by at most kMaxRelativeError (1/32).
  // Check both edges of every bucket — the worst cases by construction.
  const auto n = LatencyHistogram::bucket_count();
  for (std::size_t i = LatencyHistogram::index_of(32); i < n; ++i) {
    const auto rep = LatencyHistogram::bucket_representative(i);
    for (const std::uint64_t v :
         {LatencyHistogram::bucket_lower(i), LatencyHistogram::bucket_upper(i)}) {
      const double error =
          v > rep ? static_cast<double>(v - rep) : static_cast<double>(rep - v);
      EXPECT_LE(error / static_cast<double>(v),
                LatencyHistogram::kMaxRelativeError)
          << "bucket " << i << " value " << v << " representative " << rep;
    }
  }
}

TEST(LatencyHistogramTest, QuantileWithinBoundAcrossMagnitudes) {
  // Property test across nine decades: quantiles of a recorded sample
  // set stay within the relative-error bound of the true order
  // statistic computed from the sorted samples.
  util::Rng rng(7);
  for (const std::uint64_t scale :
       {std::uint64_t{1}, std::uint64_t{100}, std::uint64_t{10'000},
        std::uint64_t{1'000'000}, std::uint64_t{100'000'000},
        std::uint64_t{10'000'000'000}}) {
    LatencyHistogram hist;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t v = rng.uniform_range(0, 99) * scale + i % 50;
      samples.push_back(v);
      hist.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      const std::size_t rank =
          q <= 0.0 ? 0
                   : std::min<std::size_t>(
                         samples.size() - 1,
                         static_cast<std::size_t>(
                             std::ceil(q * static_cast<double>(
                                               samples.size()))) -
                             1);
      const double truth = static_cast<double>(samples[rank]);
      const double got = static_cast<double>(hist.quantile(q));
      const double tolerance =
          std::max(1.0, truth * LatencyHistogram::kMaxRelativeError);
      EXPECT_NEAR(got, truth, tolerance)
          << "scale " << scale << " q " << q;
    }
  }
}

TEST(LatencyHistogramTest, CountSumMaxAreExact) {
  LatencyHistogram hist;
  std::uint64_t sum = 0;
  for (std::uint64_t v = 0; v < 1000; v += 7) {
    hist.record(v);
    sum += v;
  }
  EXPECT_EQ(hist.count(), 143u);
  EXPECT_EQ(hist.sum(), sum);
  EXPECT_EQ(hist.max(), 994u);  // exact, not bucket-rounded
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 143u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, 994u);
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.p999, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(LatencyHistogramTest, MergeEqualsSingleRecorder) {
  // Three shard-local recorders merged in different orders must agree
  // bucket-for-bucket with one recorder that saw the union — the
  // property that makes per-shard recording safe.
  util::Rng rng(11);
  LatencyHistogram a, b, c, single;
  std::vector<LatencyHistogram*> shards = {&a, &b, &c};
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_range(0, 50'000'000);
    shards[static_cast<std::size_t>(i) % 3]->record(v);
    single.record(v);
  }

  // (a + b) + c
  LatencyHistogram left;
  left.merge_from(a);
  left.merge_from(b);
  left.merge_from(c);
  // c + (b + a)
  LatencyHistogram right;
  right.merge_from(c);
  right.merge_from(b);
  right.merge_from(a);

  EXPECT_EQ(left.bucket_counts(), single.bucket_counts());
  EXPECT_EQ(right.bucket_counts(), single.bucket_counts());
  EXPECT_EQ(left.count(), single.count());
  EXPECT_EQ(left.sum(), single.sum());
  EXPECT_EQ(left.max(), single.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(left.quantile(q), single.quantile(q)) << "q " << q;
    EXPECT_EQ(right.quantile(q), single.quantile(q)) << "q " << q;
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordAndQuantile) {
  // 4 writers + a reader hammering quantile/snapshot: tsan coverage for
  // the lock-free claim, and the final totals must be exact.
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = hist.snapshot();
      // A mid-flight snapshot is a valid histogram of a subset: its
      // quantiles are bounded by the largest value any writer records.
      EXPECT_LE(snap.p999, 8 * kPerThread);
      (void)hist.quantile(0.5);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(i + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  const std::uint64_t expected = kPerThread * static_cast<std::uint64_t>(kThreads);
  EXPECT_EQ(hist.count(), expected);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, expected);
  EXPECT_EQ(snap.max, kPerThread - 1 + static_cast<std::uint64_t>(kThreads) - 1);
}

}  // namespace
}  // namespace quicsand
