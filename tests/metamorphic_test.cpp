// Metamorphic invariants of the analysis stack: transformations of the
// input stream with a known effect on the output — shift every timestamp
// by a constant, permute records that share a timestamp across sources —
// must change the results in exactly that way and nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/classifier.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand::core {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

std::vector<net::RawPacket> scenario_packets(
    telescope::ScenarioConfig& scenario) {
  const auto registry = asdb::AsRegistry::synthetic({}, 7);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, 7);
  telescope::TelescopeGenerator generator(scenario, registry, deployment);
  std::vector<net::RawPacket> packets;
  generator.generate(
      [&](const net::RawPacket& packet) { packets.push_back(packet); });
  return packets;
}

std::vector<DetectedAttack> sorted_attacks(std::vector<DetectedAttack> a) {
  for (auto& attack : a) attack.session_index = 0;
  std::sort(a.begin(), a.end(),
            [](const DetectedAttack& x, const DetectedAttack& y) {
              return std::tie(x.start, x.victim) < std::tie(y.start, y.victim);
            });
  return a;
}

TEST(Metamorphic, GlobalTimeShiftShiftsEverythingByDelta) {
  auto scenario = telescope::ScenarioConfig::april2021(1, 31);
  scenario.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  scenario.attacks.quic_attacks_per_day = 30;
  scenario.attacks.common_attacks_per_day = 100;
  const auto packets = scenario_packets(scenario);

  // Whole hours keep the hourly binning aligned; the extra day keeps the
  // shifted stream inside the analysis window.
  constexpr util::Duration kDelta = 5 * util::kHour;

  PipelineOptions base_options;
  base_options.window_start = scenario.start;
  base_options.days = scenario.days + 1;
  Pipeline base(base_options);
  for (const auto& packet : packets) base.consume(packet);

  PipelineOptions shifted_options = base_options;
  shifted_options.window_start = scenario.start + kDelta;
  Pipeline shifted(shifted_options);
  for (const auto& packet : packets) {
    net::RawPacket moved = packet;
    moved.timestamp += kDelta;
    shifted.consume(moved);
  }

  // Identical hourly histograms (the shift moved the window with the
  // data) and identical record counts.
  EXPECT_EQ(base.hourly().research_quic, shifted.hourly().research_quic);
  EXPECT_EQ(base.hourly().other_quic, shifted.hourly().other_quic);
  EXPECT_EQ(base.hourly().quic_requests, shifted.hourly().quic_requests);
  EXPECT_EQ(base.hourly().quic_responses, shifted.hourly().quic_responses);
  ASSERT_EQ(base.records().size(), shifted.records().size());

  // Every attack shifts by exactly kDelta; all other fields are equal.
  auto base_attacks = sorted_attacks(base.analyze_attacks().quic_attacks);
  auto shifted_attacks =
      sorted_attacks(shifted.analyze_attacks().quic_attacks);
  ASSERT_GT(base_attacks.size(), 3u);
  ASSERT_EQ(base_attacks.size(), shifted_attacks.size());
  for (std::size_t i = 0; i < base_attacks.size(); ++i) {
    auto expected = base_attacks[i];
    expected.start += kDelta;
    expected.end += kDelta;
    EXPECT_EQ(expected, shifted_attacks[i]) << "attack " << i;
  }
}

PacketRecord response_record(util::Timestamp t, std::uint32_t src) {
  PacketRecord record;
  record.timestamp = t;
  record.src = net::Ipv4Address(src);
  record.dst = net::Ipv4Address(0x2c000001);
  record.src_port = 443;
  record.dst_port = 40000;
  record.wire_size = 1200;
  record.cls = TrafficClass::kQuicResponse;
  record.quic_version = 1;
  return record;
}

TEST(Metamorphic, EqualTimestampCrossSourcePermutation) {
  // Three sources emitting at the same instants: the relative order of
  // the tied records must not matter, online or offline, because all
  // session state is per source.
  const std::uint32_t sources[3] = {0xaa000001, 0xbb000002, 0xcc000003};
  std::vector<PacketRecord> forward, rotated;
  for (int i = 0; i < 240; ++i) {
    const auto t = kT0 + i * util::kSecond;
    for (int s = 0; s < 3; ++s) {
      forward.push_back(response_record(t, sources[s]));
      rotated.push_back(response_record(t, sources[(s + 2) % 3]));
    }
  }

  const auto run_online = [](const std::vector<PacketRecord>& records) {
    OnlineDetector detector({});
    std::vector<DetectedAttack> attacks;
    detector.set_on_attack(
        [&](const DetectedAttack& a) { attacks.push_back(a); });
    for (const auto& record : records) detector.consume(record);
    detector.finish();
    return sorted_attacks(std::move(attacks));
  };
  const auto forward_online = run_online(forward);
  EXPECT_EQ(forward_online.size(), 3u);
  EXPECT_EQ(forward_online, run_online(rotated));

  const DosThresholds thresholds;
  const auto offline = [&](const std::vector<PacketRecord>& records) {
    const auto sessions =
        build_sessions(records, 5 * util::kMinute, quic_response_filter());
    return sorted_attacks(detect_attacks(sessions, thresholds));
  };
  EXPECT_EQ(offline(forward), offline(rotated));
  EXPECT_EQ(offline(forward), forward_online);
}

TEST(Metamorphic, OnlineTimeShiftShiftsAttacksByDelta) {
  // The online detector carries no absolute-time state: shifting the
  // stream shifts alerts and attacks, and nothing else changes.
  constexpr util::Duration kDelta = (37 * util::kHour) + (123 * util::kSecond);
  const auto run = [](util::Duration delta) {
    OnlineDetector detector({});
    std::vector<DetectedAttack> attacks;
    detector.set_on_attack(
        [&](const DetectedAttack& a) { attacks.push_back(a); });
    for (int burst = 0; burst < 3; ++burst) {
      for (int i = 0; i < 150; ++i) {
        detector.consume(response_record(
            kT0 + delta + (burst * util::kHour) + (i * util::kSecond),
            0xdd000000 + static_cast<std::uint32_t>(burst)));
      }
    }
    detector.finish();
    return sorted_attacks(std::move(attacks));
  };
  const auto base = run(util::Duration{});
  auto shifted = run(kDelta);
  ASSERT_EQ(base.size(), 3u);
  ASSERT_EQ(shifted.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(shifted[i].start - base[i].start, kDelta);
    EXPECT_EQ(shifted[i].end - base[i].end, kDelta);
    EXPECT_EQ(shifted[i].packets, base[i].packets);
    EXPECT_EQ(shifted[i].peak_pps, base[i].peak_pps);
    EXPECT_EQ(shifted[i].victim, base[i].victim);
  }
}

}  // namespace
}  // namespace quicsand::core
