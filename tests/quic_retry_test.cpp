#include "quic/retry.hpp"

#include <gtest/gtest.h>

#include "quic/header.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

using util::from_hex_strict;

const net::Ipv4Address kClient = net::Ipv4Address::from_octets(203, 0, 113, 7);
constexpr std::uint16_t kPort = 50123;

ConnectionId cid(const char* hex) {
  return ConnectionId(from_hex_strict(hex));
}

class RetryTokenTest : public ::testing::Test {
 protected:
  RetryTokenTest()
      : minter_(from_hex_strict("000102030405060708090a0b0c0d0e0f"),
                10 * util::kSecond) {}

  RetryTokenMinter minter_;
  util::Timestamp now_ = util::kApril2021Start;
};

TEST_F(RetryTokenTest, MintValidateRoundTrip) {
  const auto odcid = cid("8394c8f03e515708");
  const auto token = minter_.mint(kClient, kPort, odcid, now_);
  const auto validated = minter_.validate(token, kClient, kPort, now_ + util::kSecond);
  ASSERT_TRUE(validated.has_value());
  EXPECT_EQ(*validated, odcid);
}

TEST_F(RetryTokenTest, RejectsDifferentClientAddress) {
  const auto token = minter_.mint(kClient, kPort, cid("aa"), now_);
  const auto other = net::Ipv4Address::from_octets(203, 0, 113, 8);
  EXPECT_FALSE(minter_.validate(token, other, kPort, now_).has_value());
}

TEST_F(RetryTokenTest, RejectsDifferentClientPort) {
  const auto token = minter_.mint(kClient, kPort, cid("aa"), now_);
  EXPECT_FALSE(minter_.validate(token, kClient, kPort + 1, now_).has_value());
}

TEST_F(RetryTokenTest, RejectsExpiredToken) {
  const auto token = minter_.mint(kClient, kPort, cid("aa"), now_);
  EXPECT_TRUE(
      minter_.validate(token, kClient, kPort, now_ + 9 * util::kSecond)
          .has_value());
  EXPECT_FALSE(
      minter_.validate(token, kClient, kPort, now_ + 11 * util::kSecond)
          .has_value());
}

TEST_F(RetryTokenTest, RejectsTokenFromTheFuture) {
  const auto token = minter_.mint(kClient, kPort, cid("aa"), now_);
  EXPECT_FALSE(
      minter_.validate(token, kClient, kPort, now_ - util::kSecond)
          .has_value());
}

TEST_F(RetryTokenTest, RejectsTamperedToken) {
  auto token = minter_.mint(kClient, kPort, cid("aabbccdd"), now_);
  token[9] ^= 0x01;  // inside the odcid length/odcid region
  EXPECT_FALSE(minter_.validate(token, kClient, kPort, now_).has_value());
}

TEST_F(RetryTokenTest, RejectsTruncatedToken) {
  const auto token = minter_.mint(kClient, kPort, cid("aa"), now_);
  const std::span<const std::uint8_t> shortened(token.data(),
                                                token.size() - 1);
  EXPECT_FALSE(minter_.validate(shortened, kClient, kPort, now_).has_value());
  EXPECT_FALSE(minter_.validate({token.data(), 5}, kClient, kPort, now_)
                   .has_value());
}

TEST_F(RetryTokenTest, DifferentSecretsRejectEachOther) {
  RetryTokenMinter other(from_hex_strict("ffffffffffffffffffffffffffffffff"));
  const auto token = minter_.mint(kClient, kPort, cid("aa"), now_);
  EXPECT_FALSE(other.validate(token, kClient, kPort, now_).has_value());
}

TEST(RetryTokenMinterTest, RejectsEmptySecret) {
  EXPECT_THROW(RetryTokenMinter minter({}), std::invalid_argument);
}

class RetryPacketTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RetryPacketTest, BuildVerifyRoundTrip) {
  const std::uint32_t version = GetParam();
  const auto odcid = cid("8394c8f03e515708");
  const auto token = from_hex_strict("746f6b656e");  // "token"
  const auto packet = build_retry_packet(version, cid("c0ffee"),
                                         cid("0123456789abcdef"), token,
                                         odcid);
  // Parses as a Retry packet.
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, PacketType::kRetry);
  EXPECT_EQ(view->version, version);
  EXPECT_EQ(view->scid, cid("0123456789abcdef"));
  ASSERT_EQ(view->retry_token.size(), token.size());
  EXPECT_TRUE(std::equal(token.begin(), token.end(),
                         view->retry_token.begin()));
  // Integrity verifies against the correct ODCID only.
  EXPECT_TRUE(verify_retry_integrity(version, packet, odcid));
  EXPECT_FALSE(verify_retry_integrity(version, packet, cid("deadbeef")));
}

TEST_P(RetryPacketTest, TamperedPacketFailsIntegrity) {
  const std::uint32_t version = GetParam();
  const auto odcid = cid("8394c8f03e515708");
  auto packet = build_retry_packet(version, cid("c0ffee"), cid("11223344"),
                                   from_hex_strict("aabb"), odcid);
  packet[7] ^= 0x01;
  EXPECT_FALSE(verify_retry_integrity(version, packet, odcid));
}

INSTANTIATE_TEST_SUITE_P(AllSaltGenerations, RetryPacketTest,
                         ::testing::Values(0x00000001u,   // v1
                                           0xff00001du,   // draft-29
                                           0xff00001bu,   // draft-27
                                           0xfaceb002u),  // mvfst-draft-27
                         [](const auto& info) {
                           switch (info.param) {
                             case 1:
                               return std::string("v1");
                             case 0xff00001d:
                               return std::string("draft29");
                             case 0xff00001b:
                               return std::string("draft27");
                             default:
                               return std::string("mvfst");
                           }
                         });

TEST(RetryPacket, RejectsUnsupportedVersion) {
  EXPECT_THROW(build_retry_packet(0x51303433, cid("aa"), cid("bb"),
                                  from_hex_strict("cc"), cid("dd")),
               std::invalid_argument);
}

TEST(RetryPacket, RejectsEmptyToken) {
  EXPECT_THROW(build_retry_packet(1, cid("aa"), cid("bb"), {}, cid("dd")),
               std::invalid_argument);
}

TEST(RetryPacket, VerifyRejectsShortPacket) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(verify_retry_integrity(1, tiny, cid("aa")));
}

}  // namespace
}  // namespace quicsand::quic
