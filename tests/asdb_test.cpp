#include <gtest/gtest.h>

#include "asdb/prefix_trie.hpp"
#include "asdb/registry.hpp"

namespace quicsand::asdb {
namespace {

net::Ipv4Prefix pfx(const char* text) {
  return *net::Ipv4Prefix::parse(text);
}

net::Ipv4Address ip(const char* text) {
  return *net::Ipv4Address::parse(text);
}

TEST(PrefixTrieTest, LongestPrefixMatchWins) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.1.0.0/16"), 2);
  trie.insert(pfx("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(ip("10.9.9.9")), 1);
  EXPECT_EQ(trie.lookup(ip("10.1.9.9")), 2);
  EXPECT_EQ(trie.lookup(ip("10.1.2.3")), 3);
  EXPECT_FALSE(trie.lookup(ip("11.0.0.1")).has_value());
}

TEST(PrefixTrieTest, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 42);
  EXPECT_EQ(trie.lookup(ip("1.2.3.4")), 42);
  EXPECT_EQ(trie.lookup(ip("255.255.255.255")), 42);
}

TEST(PrefixTrieTest, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("192.0.2.1/32"), 7);
  EXPECT_EQ(trie.lookup(ip("192.0.2.1")), 7);
  EXPECT_FALSE(trie.lookup(ip("192.0.2.2")).has_value());
}

TEST(PrefixTrieTest, ReinsertOverwrites) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.lookup(ip("10.0.0.1")), 2);
  EXPECT_EQ(trie.announcements(), 2u);
}

TEST(NetworkTypeTest, PeeringDbNames) {
  EXPECT_STREQ(network_type_name(NetworkType::kEyeball), "Cable/DSL/ISP");
  EXPECT_STREQ(network_type_name(NetworkType::kContent), "Content");
  EXPECT_STREQ(network_type_name(NetworkType::kTransit), "NSP");
  EXPECT_STREQ(network_type_name(NetworkType::kEducation),
               "Educational/Research");
  EXPECT_STREQ(network_type_name(NetworkType::kEnterprise), "Enterprise");
  EXPECT_STREQ(network_type_name(NetworkType::kUnknown), "Unknown");
}

class RegistryTest : public ::testing::Test {
 protected:
  static const AsRegistry& registry() {
    static const AsRegistry reg = AsRegistry::synthetic({}, 1);
    return reg;
  }
};

TEST_F(RegistryTest, WellKnownAsesPresent) {
  const auto* google = registry().find(AsRegistry::kGoogle);
  ASSERT_NE(google, nullptr);
  EXPECT_EQ(google->name, "GOOGLE");
  EXPECT_EQ(google->type, NetworkType::kContent);
  const auto* facebook = registry().find(AsRegistry::kFacebook);
  ASSERT_NE(facebook, nullptr);
  EXPECT_EQ(facebook->type, NetworkType::kContent);
  const auto* tum = registry().find(AsRegistry::kTumScanner);
  ASSERT_NE(tum, nullptr);
  EXPECT_EQ(tum->type, NetworkType::kEducation);
}

TEST_F(RegistryTest, LookupMapsWellKnownPrefixes) {
  const auto* info = registry().lookup(ip("142.250.1.1"));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->asn, AsRegistry::kGoogle);
  const auto* fb = registry().lookup(ip("157.240.9.9"));
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fb->asn, AsRegistry::kFacebook);
  const auto* rwth = registry().lookup(ip("137.226.1.1"));
  ASSERT_NE(rwth, nullptr);
  EXPECT_EQ(rwth->asn, AsRegistry::kRwthScanner);
}

TEST_F(RegistryTest, UnroutedAddressReturnsNull) {
  EXPECT_EQ(registry().lookup(ip("44.1.2.3")), nullptr);  // telescope
  EXPECT_EQ(registry().lookup(ip("127.0.0.1")), nullptr);
}

TEST_F(RegistryTest, GeneratedCountsMatchConfig) {
  const SyntheticConfig config{};
  EXPECT_EQ(registry().by_type(NetworkType::kEyeball).size(),
            static_cast<std::size_t>(config.eyeball_ases));
  EXPECT_EQ(registry().by_type(NetworkType::kTransit).size(),
            static_cast<std::size_t>(config.transit_ases));
  EXPECT_EQ(registry().by_type(NetworkType::kEnterprise).size(),
            static_cast<std::size_t>(config.enterprise_ases));
  // Named content providers + generated CDNs.
  EXPECT_EQ(registry().by_type(NetworkType::kContent).size(),
            static_cast<std::size_t>(config.extra_content_ases) + 7);
}

TEST_F(RegistryTest, EyeballCountriesCoverTheMix) {
  const auto bd = registry().by_type_and_country(NetworkType::kEyeball, "BD");
  const auto us = registry().by_type_and_country(NetworkType::kEyeball, "US");
  EXPECT_FALSE(bd.empty());
  EXPECT_FALSE(us.empty());
  // BD and US dominate the weights, so both should be well represented.
  EXPECT_GT(bd.size() + us.size(),
            registry().by_type(NetworkType::kEyeball).size() / 4);
}

TEST_F(RegistryTest, RandomAddressStaysInsideAs) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto addr =
        registry().random_address_in(AsRegistry::kGoogle, rng);
    const auto* info = registry().lookup(addr);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->asn, AsRegistry::kGoogle);
  }
}

TEST_F(RegistryTest, DeterministicForSameSeed) {
  const auto a = AsRegistry::synthetic({}, 99);
  const auto b = AsRegistry::synthetic({}, 99);
  util::Rng rng_a(5), rng_b(5);
  for (int i = 0; i < 50; ++i) {
    const auto eyeballs_a = a.by_type(NetworkType::kEyeball);
    const auto eyeballs_b = b.by_type(NetworkType::kEyeball);
    ASSERT_EQ(eyeballs_a.size(), eyeballs_b.size());
    const auto asn = eyeballs_a[static_cast<std::size_t>(i)];
    EXPECT_EQ(asn, eyeballs_b[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.random_address_in(asn, rng_a),
              b.random_address_in(asn, rng_b));
  }
}

TEST_F(RegistryTest, RejectsDuplicatesAndEmptyPrefixLists) {
  AsRegistry reg;
  const net::Ipv4Prefix p[] = {pfx("198.18.0.0/16")};
  reg.add({1, "TEST", NetworkType::kEnterprise, "US"}, p);
  EXPECT_THROW(reg.add({1, "DUP", NetworkType::kEnterprise, "US"}, p),
               std::invalid_argument);
  EXPECT_THROW(reg.add({2, "EMPTY", NetworkType::kEnterprise, "US"}, {}),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(reg.prefixes_of(99)), std::out_of_range);
}

}  // namespace
}  // namespace quicsand::asdb
