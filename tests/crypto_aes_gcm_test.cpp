#include <gtest/gtest.h>

#include <vector>

#include "crypto/aes128.hpp"
#include "crypto/gcm.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::crypto {
namespace {

using util::from_hex_strict;
using util::to_hex;

// FIPS 197 Appendix B example.
TEST(Aes128, Fips197AppendixB) {
  const auto key = from_hex_strict("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = from_hex_strict("3243f6a8885a308d313198a2e0370734");
  Aes128 aes(key);
  EXPECT_EQ(to_hex(aes.encrypt_block(pt)), "3925841d02dc09fbdc118597196a0b32");
}

// FIPS 197 Appendix C.1 example (sequential key/plaintext).
TEST(Aes128, Fips197AppendixC1) {
  const auto key = from_hex_strict("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex_strict("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  EXPECT_EQ(to_hex(aes.encrypt_block(pt)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, RejectsBadSizes) {
  const std::vector<std::uint8_t> short_key(15, 0);
  EXPECT_THROW(Aes128 aes(short_key), std::invalid_argument);
  Aes128 aes(std::vector<std::uint8_t>(16, 0));
  EXPECT_THROW((void)aes.encrypt_block(std::vector<std::uint8_t>(15, 0)),
               std::invalid_argument);
}

// NIST GCM spec test case 1: zero key/IV, empty everything.
TEST(AesGcm, NistCase1EmptyTag) {
  AesGcm gcm(std::vector<std::uint8_t>(16, 0));
  const std::vector<std::uint8_t> iv(12, 0);
  const auto sealed = gcm.seal(iv, {}, {});
  EXPECT_EQ(to_hex(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

// NIST GCM spec test case 2: zero key/IV, one zero block.
TEST(AesGcm, NistCase2SingleBlock) {
  AesGcm gcm(std::vector<std::uint8_t>(16, 0));
  const std::vector<std::uint8_t> iv(12, 0);
  const std::vector<std::uint8_t> pt(16, 0);
  const auto sealed = gcm.seal(iv, {}, pt);
  EXPECT_EQ(to_hex(sealed),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

// NIST GCM spec test case 3: 64-byte plaintext, no AAD.
TEST(AesGcm, NistCase3FourBlocks) {
  AesGcm gcm(from_hex_strict("feffe9928665731c6d6a8f9467308308"));
  const auto iv = from_hex_strict("cafebabefacedbaddecaf888");
  const auto pt = from_hex_strict(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const auto sealed = gcm.seal(iv, {}, pt);
  EXPECT_EQ(to_hex(sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

// NIST GCM spec test case 4: 60-byte plaintext with AAD.
TEST(AesGcm, NistCase4WithAad) {
  AesGcm gcm(from_hex_strict("feffe9928665731c6d6a8f9467308308"));
  const auto iv = from_hex_strict("cafebabefacedbaddecaf888");
  const auto pt = from_hex_strict(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const auto aad =
      from_hex_strict("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto sealed = gcm.seal(iv, aad, pt);
  EXPECT_EQ(to_hex(sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(AesGcm, SealOpenRoundTrip) {
  util::Rng rng(123);
  AesGcm gcm(rng.bytes(16));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1200u}) {
    const auto nonce = rng.bytes(12);
    const auto aad = rng.bytes(23);
    const auto pt = rng.bytes(len);
    const auto sealed = gcm.seal(nonce, aad, pt);
    ASSERT_EQ(sealed.size(), len + AesGcm::kTagSize);
    const auto opened = gcm.open(nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value()) << "len " << len;
    EXPECT_EQ(*opened, pt);
  }
}

TEST(AesGcm, OpenRejectsTamperedCiphertext) {
  util::Rng rng(7);
  AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto pt = rng.bytes(64);
  auto sealed = gcm.seal(nonce, {}, pt);
  sealed[10] ^= 0x01;
  EXPECT_FALSE(gcm.open(nonce, {}, sealed).has_value());
}

TEST(AesGcm, OpenRejectsTamperedTag) {
  util::Rng rng(8);
  AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  auto sealed = gcm.seal(nonce, {}, rng.bytes(32));
  sealed.back() ^= 0x80;
  EXPECT_FALSE(gcm.open(nonce, {}, sealed).has_value());
}

TEST(AesGcm, OpenRejectsWrongAad) {
  util::Rng rng(9);
  AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto aad = rng.bytes(8);
  const auto sealed = gcm.seal(nonce, aad, rng.bytes(32));
  auto wrong = aad;
  wrong[0] ^= 1;
  EXPECT_FALSE(gcm.open(nonce, wrong, sealed).has_value());
}

TEST(AesGcm, OpenRejectsShortInput) {
  AesGcm gcm(std::vector<std::uint8_t>(16, 1));
  const std::vector<std::uint8_t> nonce(12, 0);
  const std::vector<std::uint8_t> too_short(15, 0);
  EXPECT_FALSE(gcm.open(nonce, {}, too_short).has_value());
}

TEST(AesGcm, TagOnlyMatchesSealOfEmpty) {
  util::Rng rng(10);
  AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto aad = rng.bytes(40);
  const auto tag = gcm.tag_only(nonce, aad);
  const auto sealed = gcm.seal(nonce, aad, {});
  ASSERT_EQ(sealed.size(), AesGcm::kTagSize);
  EXPECT_TRUE(std::equal(tag.begin(), tag.end(), sealed.begin()));
}

TEST(AesGcm, RejectsNon96BitNonce) {
  AesGcm gcm(std::vector<std::uint8_t>(16, 0));
  const std::vector<std::uint8_t> nonce(11, 0);
  EXPECT_THROW(gcm.seal(nonce, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace quicsand::crypto
