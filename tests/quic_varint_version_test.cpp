#include <gtest/gtest.h>

#include "quic/varint.hpp"
#include "quic/version.hpp"
#include "util/bytes.hpp"

namespace quicsand::quic {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::from_hex_strict;
using util::to_hex;

// RFC 9000 §A.1 example encodings.
TEST(Varint, Rfc9000Examples) {
  struct Case {
    const char* hex;
    std::uint64_t value;
  };
  const Case cases[] = {
      {"c2197c5eff14e88c", 151288809941952652ULL},
      {"9d7f3e7d", 494878333},
      {"7bbd", 15293},
      {"25", 37},
      {"4025", 37},  // non-minimal two-byte encoding of 37
  };
  for (const auto& c : cases) {
    const auto bytes = from_hex_strict(c.hex);
    ByteReader r(bytes);
    EXPECT_EQ(read_varint(r), c.value) << c.hex;
    EXPECT_TRUE(r.empty());
  }
}

TEST(Varint, EncodesMinimally) {
  struct Case {
    std::uint64_t value;
    const char* hex;
  };
  const Case cases[] = {
      {0, "00"},
      {37, "25"},
      {63, "3f"},
      {64, "4040"},
      {15293, "7bbd"},
      {16383, "7fff"},
      {16384, "80004000"},
      {494878333, "9d7f3e7d"},
      {1073741823, "bfffffff"},
      {1073741824, "c000000040000000"},
      {151288809941952652ULL, "c2197c5eff14e88c"},
      {kVarintMax, "ffffffffffffffff"},
  };
  for (const auto& c : cases) {
    ByteWriter w;
    write_varint(w, c.value);
    EXPECT_EQ(to_hex(w.view()), c.hex) << c.value;
  }
}

TEST(Varint, SizeBoundaries) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(63), 1u);
  EXPECT_EQ(varint_size(64), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 4u);
  EXPECT_EQ(varint_size((1ULL << 30) - 1), 4u);
  EXPECT_EQ(varint_size(1ULL << 30), 8u);
  EXPECT_EQ(varint_size(kVarintMax), 8u);
  EXPECT_THROW(varint_size(kVarintMax + 1), std::invalid_argument);
}

TEST(Varint, RoundTripSweep) {
  const std::uint64_t values[] = {0,     1,          63,
                                  64,    16383,      16384,
                                  1u << 20, (1ULL << 30) - 1, 1ULL << 30,
                                  1ULL << 40, kVarintMax};
  for (std::uint64_t v : values) {
    ByteWriter w;
    write_varint(w, v);
    ByteReader r(w.view());
    EXPECT_EQ(read_varint(r), v);
  }
}

TEST(Varint, FixedSizeEncoding) {
  ByteWriter w;
  write_varint_with_size(w, 37, 2);
  EXPECT_EQ(to_hex(w.view()), "4025");
  EXPECT_THROW(write_varint_with_size(w, 16384, 2), std::invalid_argument);
  EXPECT_THROW(write_varint_with_size(w, 1, 3), std::invalid_argument);
}

TEST(Varint, ReadTruncatedThrows) {
  const auto bytes = from_hex_strict("c2197c");
  ByteReader r(bytes);
  EXPECT_THROW(read_varint(r), util::BufferUnderflow);
}

TEST(Version, Families) {
  EXPECT_EQ(version_family(0), VersionFamily::kNegotiation);
  EXPECT_EQ(version_family(1), VersionFamily::kIetf);
  EXPECT_EQ(version_family(0xff00001d), VersionFamily::kIetf);
  EXPECT_EQ(version_family(0xfaceb002), VersionFamily::kIetf);
  EXPECT_EQ(version_family(0x51303433), VersionFamily::kGquic);
  EXPECT_EQ(version_family(0x1a2a3a4a), VersionFamily::kIetf);  // grease
  EXPECT_EQ(version_family(0xdeadbeef), VersionFamily::kUnknown);
}

TEST(Version, SaltGenerations) {
  EXPECT_EQ(salt_generation(1), SaltGeneration::kV1);
  EXPECT_EQ(salt_generation(0xff00001d), SaltGeneration::kDraft29_32);
  EXPECT_EQ(salt_generation(0xff000020), SaltGeneration::kDraft29_32);
  EXPECT_EQ(salt_generation(0xff00001b), SaltGeneration::kDraft23_28);
  EXPECT_EQ(salt_generation(0xff000017), SaltGeneration::kDraft23_28);
  EXPECT_EQ(salt_generation(0xfaceb002), SaltGeneration::kDraft23_28);
  EXPECT_EQ(salt_generation(0x51303433), SaltGeneration::kNone);
  EXPECT_EQ(salt_generation(0xff000010), SaltGeneration::kNone);  // draft-16
}

TEST(Version, InitialSaltValues) {
  EXPECT_EQ(to_hex(initial_salt(SaltGeneration::kV1)),
            "38762cf7f55934b34d179ae6a4c80cadccbb7f0a");
  EXPECT_EQ(to_hex(initial_salt(SaltGeneration::kDraft29_32)),
            "afbfec289993d24c9e9786f19c6111e04390a899");
  EXPECT_EQ(to_hex(initial_salt(SaltGeneration::kDraft23_28)),
            "c3eef712c72ebb5a11a7d2432bb46365bef9f502");
  EXPECT_THROW(initial_salt(SaltGeneration::kNone), std::invalid_argument);
}

TEST(Version, Names) {
  EXPECT_EQ(version_name(1), "v1");
  EXPECT_EQ(version_name(0xff00001d), "draft-29");
  EXPECT_EQ(version_name(0xff00001b), "draft-27");
  EXPECT_EQ(version_name(0xfaceb002), "mvfst-draft-27");
  EXPECT_EQ(version_name(0x51303433), "Q043");
  EXPECT_EQ(version_name(0xdeadbeef), "0xdeadbeef");
}

TEST(Version, KnownVersions) {
  EXPECT_TRUE(is_known_version(1));
  EXPECT_TRUE(is_known_version(0xff00001d));
  EXPECT_TRUE(is_known_version(0xfaceb002));
  EXPECT_TRUE(is_known_version(0x51303530));
  EXPECT_FALSE(is_known_version(0xdeadbeef));
}

TEST(Version, Grease) {
  EXPECT_TRUE(is_grease_version(0x0a0a0a0a));
  EXPECT_TRUE(is_grease_version(0x1a2a3a4a));
  EXPECT_FALSE(is_grease_version(0x00000001));
}

}  // namespace
}  // namespace quicsand::quic
