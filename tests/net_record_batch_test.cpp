// RecordBatch property tests plus the zero-allocation pin for batched
// generation: a global operator-new hook counts heap allocations, and
// the steady-state generate loop (warm emitters, reused batch) must
// perform none per batch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "net/record_batch.hpp"
#include "scanner/deployment.hpp"
#include "telescope/attack_schedule.hpp"
#include "telescope/emitters.hpp"
#include "telescope/generator.hpp"
#include "util/rng.hpp"

// --- Counting allocator hook ------------------------------------------
// Every heap allocation in this binary bumps the counter; tests snapshot
// it around the region under measurement. Deletes are not counted (the
// pin is about allocation traffic, and sized/unsized delete pairing
// stays with the default behavior via free()).

namespace {
// Global by necessity: operator new replacements cannot take state.
// lint:allow(unguarded-mutable-static)
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace quicsand::net {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

util::Timestamp ts(std::int64_t ns) { return util::Timestamp{} + util::Duration{ns}; }

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 37);
  }
  return out;
}

// --- Capacity / reset / reuse invariants ------------------------------

TEST(RecordBatch, RespectsRecordCapacity) {
  RecordBatch batch(4, 1024);
  const auto data = pattern_bytes(10, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(batch.try_append(ts(i), data));
  }
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_FALSE(batch.has_room(1));
  EXPECT_FALSE(batch.try_append(ts(5), data));
  // A failed append leaves the batch untouched.
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.arena_used(), 40u);
}

TEST(RecordBatch, RespectsArenaCapacity) {
  RecordBatch batch(100, 64);
  EXPECT_TRUE(batch.try_append(ts(0), pattern_bytes(40, 2)));
  EXPECT_FALSE(batch.try_append(ts(1), pattern_bytes(25, 3)));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.arena_used(), 40u);
  // A packet that still fits the remaining arena is accepted.
  EXPECT_TRUE(batch.try_append(ts(1), pattern_bytes(24, 3)));
  EXPECT_EQ(batch.arena_used(), 64u);
  EXPECT_FALSE(batch.has_room(1));
}

TEST(RecordBatch, ClearKeepsStorageAndAllowsReuse) {
  RecordBatch batch(8, 256);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(batch.try_append(ts(i), pattern_bytes(16, std::uint8_t(i))));
  }
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.arena_used(), 0u);
  EXPECT_EQ(batch.capacity(), 8u);
  EXPECT_EQ(batch.arena_bytes(), 256u);

  // Refill after clear: contents are the new packets, not stale ones.
  const auto fresh = pattern_bytes(20, 99);
  ASSERT_TRUE(batch.try_append(ts(42), fresh));
  const auto view = batch.view(0);
  EXPECT_EQ(view.timestamp, ts(42));
  ASSERT_EQ(view.data.size(), fresh.size());
  EXPECT_TRUE(std::equal(fresh.begin(), fresh.end(), view.data.begin()));
}

// --- SoA column consistency -------------------------------------------

TEST(RecordBatch, ColumnsStayConsistentUnderRandomFill) {
  util::Rng rng(4242);
  RecordBatch batch(64, 8192);
  std::vector<std::vector<std::uint8_t>> expected;
  std::vector<util::Timestamp> expected_ts;
  for (;;) {
    const std::size_t len = 1 + rng.uniform(300);
    auto data = pattern_bytes(len, static_cast<std::uint8_t>(rng.next()));
    const auto t = ts(static_cast<std::int64_t>(expected.size()) * 1000);
    if (!batch.try_append(t, data)) break;
    expected.push_back(std::move(data));
    expected_ts.push_back(t);
  }
  ASSERT_GT(batch.size(), 10u);
  ASSERT_EQ(batch.size(), expected.size());

  std::size_t total_bytes = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto view = batch.view(i);
    EXPECT_EQ(view.timestamp, expected_ts[i]);
    ASSERT_EQ(view.data.size(), expected[i].size());
    EXPECT_TRUE(std::equal(expected[i].begin(), expected[i].end(),
                           view.data.begin()))
        << "payload " << i << " differs";
    // Packets are packed back-to-back in the arena.
    if (i > 0) {
      const auto prev = batch.view(i - 1);
      EXPECT_EQ(view.data.data(), prev.data.data() + prev.data.size());
    }
    total_bytes += view.data.size();
  }
  EXPECT_EQ(batch.arena_used(), total_bytes);
  EXPECT_EQ(batch.timestamps().size(), batch.size());
}

TEST(RecordBatch, SwapExchangesContents) {
  RecordBatch a(4, 128);
  RecordBatch b(16, 512);
  ASSERT_TRUE(a.try_append(ts(1), pattern_bytes(8, 1)));
  swap(a, b);
  EXPECT_EQ(a.capacity(), 16u);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.capacity(), 4u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.view(0).timestamp, ts(1));
}

// --- Zero steady-state allocations ------------------------------------

TEST(RecordBatch, AppendClearCycleAllocatesNothing) {
  RecordBatch batch(32, 4096);
  const auto data = pattern_bytes(100, 7);
  // Warm-up fill (columns were reserved at construction already).
  while (batch.try_append(ts(0), data)) {
  }
  batch.clear();

  const auto before = allocations();
  for (int cycle = 0; cycle < 100; ++cycle) {
    while (batch.try_append(ts(cycle), data)) {
    }
    batch.clear();
  }
  EXPECT_EQ(allocations(), before);
}

/// Drain an emitter built by `make` once to learn its stream length,
/// then rebuild it, warm it over the first half, and assert the second
/// half produces with ZERO heap allocations: every scratch buffer
/// (writers, retransmission queues, crypto scratch) must have reached
/// its high-water capacity.
template <typename MakeEmitter>
void expect_warm_emitter_alloc_free(const char* name, MakeEmitter make) {
  net::PacketBuffer buf;
  std::uint64_t length = 0;
  {
    auto emitter = make();
    while (emitter.produce(buf)) ++length;
  }
  ASSERT_GT(length, 1000u) << name;
  auto emitter = make();
  for (std::uint64_t i = 0; i < length / 2; ++i) emitter.produce(buf);
  const auto before = allocations();
  std::uint64_t produced = 0;
  while (emitter.produce(buf)) ++produced;
  EXPECT_EQ(allocations() - before, 0u)
      << name << " allocated during its warm second half";
  EXPECT_EQ(produced, length - length / 2) << name;
}

TEST(RecordBatch, WarmEmittersProduceWithoutAllocating) {
  auto config = telescope::ScenarioConfig::april2021(1, 4242);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  const auto registry = asdb::AsRegistry::synthetic({}, 2021);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, 2021);

  util::Rng rng(1234);
  const auto attacks =
      telescope::plan_attacks(config, registry, deployment, rng);
  // Pick the highest-volume attack of each protocol so the warm second
  // half is long enough to be meaningful.
  const telescope::PlannedAttack* tcp = nullptr;
  const telescope::PlannedAttack* icmp = nullptr;
  auto volume = [](const telescope::PlannedAttack& attack) {
    return attack.peak_pps * util::to_seconds(attack.duration);
  };
  for (const auto& attack : attacks) {
    if (attack.protocol == telescope::AttackProtocol::kTcp &&
        (tcp == nullptr || volume(attack) > volume(*tcp))) {
      tcp = &attack;
    }
    if (attack.protocol == telescope::AttackProtocol::kIcmp &&
        (icmp == nullptr || volume(attack) > volume(*icmp))) {
      icmp = &attack;
    }
  }
  ASSERT_NE(tcp, nullptr);
  ASSERT_NE(icmp, nullptr);

  const auto source = net::Ipv4Address::from_octets(9, 9, 9, 9);
  expect_warm_emitter_alloc_free("common-tcp", [&] {
    return telescope::CommonBackscatterEmitter(config, *tcp, 7);
  });
  expect_warm_emitter_alloc_free("common-icmp", [&] {
    return telescope::CommonBackscatterEmitter(config, *icmp, 7);
  });
  expect_warm_emitter_alloc_free("botnet", [&] {
    return telescope::BotnetSessionEmitter(config, source, config.start,
                                           20000, 7);
  });
  // All three misconfig wire formats: QUIC v1, draft-29, gQUIC Q050.
  for (const std::uint32_t version : {1u, 0xff00001du, 0x51303530u}) {
    expect_warm_emitter_alloc_free("misconfig", [&] {
      return telescope::MisconfigEmitter(config, source, version,
                                         config.start, 20000, 7);
    });
  }
}

TEST(RecordBatch, SteadyStateGenerationTailIsAllocationFree) {
  // Full-generator pin over the emitters with fully-retained scratch
  // state (research passes rebuild per-pass permutation state and QUIC
  // backscatter refills its spare datagram pool under bursts; both are
  // covered by the differential suite instead). Sessions and attacks
  // start throughout the window, so an emitter whose stream begins in
  // the measured tail legitimately grows its buffers once there — the
  // pin is therefore amortized: the overwhelming share of tail batches
  // perform zero allocations, and the per-packet allocation rate is
  // ~zero. Per-emitter strict-zero is pinned above.
  auto config = telescope::ScenarioConfig::april2021(1, 4242);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.quic_attacks_per_day = 0;
  config.attacks.common_attacks_per_day = 120;
  config.botnet.sessions_per_day = 200;
  config.misconfig.sessions_per_day = 150;

  const auto registry = asdb::AsRegistry::synthetic({}, 2021);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, 2021);
  telescope::TelescopeGenerator generator(config, registry, deployment);
  RecordBatch batch(1024, 1024 * 1500);

  std::vector<std::uint64_t> allocs_per_batch;
  std::vector<std::uint64_t> packets_per_batch;
  for (;;) {
    const auto before = allocations();
    const auto n = generator.next_batch(batch);
    if (n == 0) break;
    allocs_per_batch.push_back(allocations() - before);
    packets_per_batch.push_back(n);
  }
  ASSERT_GT(allocs_per_batch.size(), 40u);

  // Measured region: the final quarter of the stream.
  const std::size_t tail_start = allocs_per_batch.size() * 3 / 4;
  std::uint64_t tail_allocs = 0;
  std::uint64_t tail_packets = 0;
  std::size_t zero_batches = 0;
  for (std::size_t i = tail_start; i < allocs_per_batch.size(); ++i) {
    tail_allocs += allocs_per_batch[i];
    tail_packets += packets_per_batch[i];
    if (allocs_per_batch[i] == 0) ++zero_batches;
  }
  const std::size_t tail_batches = allocs_per_batch.size() - tail_start;
  EXPECT_GE(zero_batches * 2, tail_batches)
      << tail_batches - zero_batches << " of " << tail_batches
      << " tail batches hit the heap";
  EXPECT_LT(static_cast<double>(tail_allocs),
            0.005 * static_cast<double>(tail_packets))
      << tail_allocs << " allocations over " << tail_packets
      << " tail packets";
}

}  // namespace
}  // namespace quicsand::net
