// Metrics registry: concurrent increments merge losslessly across
// threads, histogram bucketing follows Prometheus le (inclusive upper
// bound) semantics, and both export formats are pinned by golden files.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace quicsand::obs {
namespace {

TEST(ObsMetrics, CounterMergesConcurrentIncrements) {
  MetricsRegistry registry;
  auto& counter = registry.counter("test.concurrent", "concurrency test");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, HistogramMergesConcurrentObservations) {
  MetricsRegistry registry;
  auto& histogram =
      registry.histogram("test.hist", {10, 100, 1000}, "concurrency test");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.observe(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  // Threads 0..7 all observed values <= 10: everything lands in bucket 0.
  EXPECT_EQ(histogram.bucket_counts()[0], kThreads * kPerThread);
  // sum = kPerThread * (0+1+...+7)
  EXPECT_EQ(histogram.sum(), kPerThread * 28);
}

TEST(ObsMetrics, GetOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  auto& a = registry.counter("same.counter", "first registration");
  auto& b = registry.counter("same.counter", "ignored help");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  auto& h1 = registry.histogram("same.hist", {1, 2, 3});
  auto& h2 = registry.histogram("same.hist", {99});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(ObsMetrics, HistogramBucketUpperBoundsAreInclusive) {
  Histogram histogram({10, 20});
  histogram.observe(10);  // == bound: first bucket (le="10")
  histogram.observe(11);  // second bucket (le="20")
  histogram.observe(21);  // overflow (+Inf)
  const auto counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("test.gauge");
  gauge.set(10);
  gauge.add(-12);
  EXPECT_EQ(gauge.value(), -2);
}

TEST(ObsMetrics, StandardBoundsAreStrictlyAscending) {
  for (const auto& bounds : {latency_bounds_us(), size_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

/// A small registry with one metric of each kind, used by both golden
/// tests: counter=3, gauge=-2, histogram bounds {1,2} fed 0,1,2,5, and
/// a latency histogram fed 1,2,500. The first two latency samples sit
/// in the exact (<32) region, so p50 is exactly 2; 500 lands in bucket
/// [496,512) whose midpoint representative is 504 — the golden pins the
/// log-linear geometry through the export path.
void populate(MetricsRegistry& registry) {
  registry.counter("a.count", "things counted").add(3);
  registry.gauge("b.gauge").set(-2);
  auto& histogram = registry.histogram("c.hist", {1, 2}, "a histogram");
  for (const std::uint64_t sample : {0, 1, 2, 5}) histogram.observe(sample);
  auto& latency = registry.latency("d.lat", "a latency");
  for (const std::uint64_t sample : {1, 2, 500}) latency.record(sample);
}

TEST(ObsMetrics, GoldenPrometheusExposition) {
  MetricsRegistry registry;
  populate(registry);
  EXPECT_EQ(registry.to_prometheus(),
            "# HELP quicsand_a_count_total things counted\n"
            "# TYPE quicsand_a_count_total counter\n"
            "quicsand_a_count_total 3\n"
            "# TYPE quicsand_b_gauge gauge\n"
            "quicsand_b_gauge -2\n"
            "# HELP quicsand_c_hist a histogram\n"
            "# TYPE quicsand_c_hist histogram\n"
            "quicsand_c_hist_bucket{le=\"1\"} 2\n"
            "quicsand_c_hist_bucket{le=\"2\"} 3\n"
            "quicsand_c_hist_bucket{le=\"+Inf\"} 4\n"
            "quicsand_c_hist_sum 8\n"
            "quicsand_c_hist_count 4\n"
            "# HELP quicsand_d_lat a latency\n"
            "# TYPE quicsand_d_lat summary\n"
            "quicsand_d_lat{quantile=\"0.5\"} 2\n"
            "quicsand_d_lat{quantile=\"0.9\"} 504\n"
            "quicsand_d_lat{quantile=\"0.99\"} 504\n"
            "quicsand_d_lat{quantile=\"0.999\"} 504\n"
            "quicsand_d_lat_sum 503\n"
            "quicsand_d_lat_count 3\n");
}

TEST(ObsMetrics, PrometheusTotalSuffixNotDoubled) {
  MetricsRegistry registry;
  registry.counter("pkts.total").add(1);
  EXPECT_EQ(registry.to_prometheus(),
            "# TYPE quicsand_pkts_total counter\n"
            "quicsand_pkts_total 1\n");
}

TEST(ObsMetrics, PrometheusHelpEscapesNewlineAndBackslash) {
  MetricsRegistry registry;
  registry.counter("esc", "line one\nback\\slash").add(1);
  EXPECT_EQ(registry.to_prometheus(),
            "# HELP quicsand_esc_total line one\\nback\\\\slash\n"
            "# TYPE quicsand_esc_total counter\n"
            "quicsand_esc_total 1\n");
}

TEST(ObsMetrics, SnapshotsListRegisteredValuesInNameOrder) {
  MetricsRegistry registry;
  populate(registry);
  const auto counters = registry.counter_snapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "a.count");
  EXPECT_EQ(counters[0].second, 3u);
  const auto gauges = registry.gauge_snapshot();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].first, "b.gauge");
  EXPECT_EQ(gauges[0].second, -2);
  const auto latencies = registry.latency_snapshot();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_EQ(latencies[0].name, "d.lat");
  EXPECT_EQ(latencies[0].snap.count, 3u);
  EXPECT_EQ(latencies[0].snap.max, 500u);
}

TEST(ObsMetrics, GoldenJsonSnapshot) {
  MetricsRegistry registry;
  populate(registry);
  EXPECT_EQ(registry.to_json(),
            "{\n"
            "  \"counters\": {\n"
            "    \"a.count\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"b.gauge\": -2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"c.hist\": {\"count\": 4, \"sum\": 8, \"buckets\": "
            "[{\"le\": 1, \"count\": 2}, {\"le\": 2, \"count\": 1}, "
            "{\"le\": null, \"count\": 1}]}\n"
            "  },\n"
            "  \"latencies\": {\n"
            "    \"d.lat\": {\"count\": 3, \"sum\": 503, \"max\": 500, "
            "\"p50\": 2, \"p90\": 504, \"p99\": 504, \"p999\": 504}\n"
            "  }\n"
            "}\n");
}

TEST(ObsMetrics, EmptyRegistryExportsAreWellFormed) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_prometheus(), "");
  EXPECT_EQ(registry.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {},\n  \"latencies\": {}\n}\n");
}

}  // namespace
}  // namespace quicsand::obs
