// Differential oracle: the streaming OnlineDetector and the offline
// Pipeline must agree bit-for-bit on the detected attack set — same
// victims, same boundaries, same packet counts and peak rates — across
// generator seeds, and the online path must be invariant to partitioning
// the record stream by source (the streaming analogue of the batch
// shard-count invariance).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/classifier.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "telescope/scoring.hpp"

namespace quicsand::core {
namespace {

telescope::ScenarioConfig small_scenario(std::uint64_t seed) {
  auto scenario = telescope::ScenarioConfig::april2021(1, seed);
  scenario.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  scenario.attacks.quic_attacks_per_day = 40;
  scenario.attacks.common_attacks_per_day = 120;
  scenario.botnet.sessions_per_day = 200;
  scenario.misconfig.sessions_per_day = 150;
  return scenario;
}

/// Attack sets from hash-map eviction (online) and session order
/// (offline) differ in ordering and session_index; normalize both away
/// before comparing every remaining field exactly.
std::vector<DetectedAttack> normalized(std::vector<DetectedAttack> attacks) {
  for (auto& attack : attacks) attack.session_index = 0;
  std::sort(attacks.begin(), attacks.end(),
            [](const DetectedAttack& a, const DetectedAttack& b) {
              return std::tie(a.start, a.victim, a.end, a.packets) <
                     std::tie(b.start, b.victim, b.end, b.packets);
            });
  return attacks;
}

struct ScenarioRun {
  std::vector<DetectedAttack> offline;
  std::vector<DetectedAttack> online;
  std::vector<PacketRecord> records;  ///< classified, analysis-kept
  double mean_alert_latency_s = 0;
  std::uint64_t alerts = 0;
  telescope::GroundTruth truth;
};

ScenarioRun run_scenario(std::uint64_t seed) {
  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, seed);
  const auto scenario = small_scenario(seed);
  telescope::TelescopeGenerator generator(scenario, registry, deployment);

  PipelineOptions options;
  options.window_start = scenario.start;
  options.days = scenario.days;
  Pipeline pipeline(options);

  OnlineDetector online({});
  ScenarioRun run;
  online.set_on_attack(
      [&](const DetectedAttack& a) { run.online.push_back(a); });

  Classifier classifier({});
  generator.generate([&](const net::RawPacket& packet) {
    pipeline.consume(packet);
    if (const auto record = classifier.classify(packet)) {
      online.consume(*record);
      if (keep_for_analysis(*record)) run.records.push_back(*record);
    }
  });
  online.finish();

  run.offline = pipeline.analyze_attacks().quic_attacks;
  run.mean_alert_latency_s = online.mean_alert_latency_s();
  run.alerts = online.alerts_fired();
  run.truth = generator.ground_truth();
  return run;
}

TEST(DiffOnlineOffline, BitIdenticalAttackSetsAcrossSeeds) {
  for (const std::uint64_t seed : {11u, 23u, 37u, 41u, 59u}) {
    SCOPED_TRACE(seed);
    const auto run = run_scenario(seed);
    ASSERT_GT(run.offline.size(), 5u) << "scenario produced too few attacks";
    EXPECT_EQ(normalized(run.offline), normalized(run.online));
  }
}

TEST(DiffOnlineOffline, AlertLatencyIsSane) {
  const auto run = run_scenario(23);
  ASSERT_GT(run.alerts, 0u);
  // An alert cannot fire before the duration threshold is crossed, and
  // the mean must stay far below the window length (early warning).
  const DosThresholds thresholds;
  EXPECT_GE(run.mean_alert_latency_s, thresholds.min_duration_s);
  EXPECT_LT(run.mean_alert_latency_s, util::to_seconds(util::kDay) / 4);
  // Every closed online attack was alerted first.
  EXPECT_GE(run.alerts, run.online.size());
}

TEST(DiffOnlineOffline, OnlinePartitionInvariance) {
  // Partitioning the stream by source across k independent detectors
  // must reproduce the single-detector attack set exactly: sessions are
  // keyed per source, so cross-source interleaving carries no state.
  const auto run = run_scenario(37);
  const auto expected = normalized(run.online);
  ASSERT_FALSE(expected.empty());

  for (const std::size_t partitions : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE(partitions);
    std::vector<OnlineDetector> detectors;
    std::vector<DetectedAttack> combined;
    detectors.reserve(partitions);
    for (std::size_t i = 0; i < partitions; ++i) {
      auto& detector = detectors.emplace_back(OnlineDetectorConfig{});
      detector.set_on_attack(
          [&](const DetectedAttack& a) { combined.push_back(a); });
    }
    for (const auto& record : run.records) {
      detectors[record.src.value() % partitions].consume(record);
    }
    for (auto& detector : detectors) detector.finish();
    EXPECT_EQ(normalized(std::move(combined)), expected);
  }
}

TEST(DiffOnlineOffline, GroundTruthPrecisionRecallFloors) {
  for (const std::uint64_t seed : {11u, 59u}) {
    SCOPED_TRACE(seed);
    const auto run = run_scenario(seed);
    const auto planned = run.truth.quic_attacks();

    // Precision: every detection must trace back to a planned attack.
    const auto all = telescope::score_detections(run.offline, planned);
    EXPECT_GE(all.precision(), 0.95);

    // Recall floor over the comfortably-detectable planned attacks.
    const DosThresholds thresholds;
    std::vector<const telescope::PlannedAttack*> strong;
    for (const auto* plan : planned) {
      if (telescope::comfortably_detectable(*plan, thresholds)) {
        strong.push_back(plan);
      }
    }
    ASSERT_GT(strong.size(), 3u);
    const auto strong_score =
        telescope::score_detections(run.offline, strong);
    EXPECT_GE(strong_score.recall(), 0.9);
  }
}

}  // namespace
}  // namespace quicsand::core
