#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "util/bytes.hpp"

namespace quicsand::crypto {
namespace {

using util::from_hex_strict;
using util::to_hex;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// RFC 4231 test vectors for HMAC-SHA256.
TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  const auto key = from_hex_strict("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const std::vector<std::uint8_t> data(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, IncrementalMatchesOneShot) {
  const std::vector<std::uint8_t> key(16, 0x42);
  const auto data = bytes_of("split into several updates");
  HmacSha256 mac(key);
  mac.update({data.data(), 5});
  mac.update({data.data() + 5, data.size() - 5});
  EXPECT_EQ(mac.finish(), hmac_sha256(key, data));
}

// RFC 5869 test vectors for HKDF-SHA256.
TEST(Hkdf, Rfc5869Case1) {
  const std::vector<std::uint8_t> ikm(22, 0x0b);
  const auto salt = from_hex_strict("000102030405060708090a0b0c");
  const auto info = from_hex_strict("f0f1f2f3f4f5f6f7f8f9");
  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case2LongInputs) {
  std::vector<std::uint8_t> ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const auto prk = hkdf_extract(salt, ikm);
  const auto okm = hkdf_expand(prk, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const std::vector<std::uint8_t> ikm(22, 0x0b);
  const auto prk = hkdf_extract({}, ikm);
  EXPECT_EQ(to_hex(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  const auto okm = hkdf_expand(prk, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandRejectsOversizedOutput) {
  const std::vector<std::uint8_t> prk(32, 0x01);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

// RFC 9001 Appendix A: keys for the QUIC v1 Initial secret schedule.
// This pins down hkdf_expand_label (TLS 1.3 label encoding) end to end.
TEST(HkdfExpandLabel, QuicV1InitialSecrets) {
  const auto salt =
      from_hex_strict("38762cf7f55934b34d179ae6a4c80cadccbb7f0a");
  const auto dcid = from_hex_strict("8394c8f03e515708");
  const auto initial_secret = hkdf_extract(salt, dcid);
  EXPECT_EQ(to_hex(initial_secret),
            "7db5df06e7a69e432496adedb00851923595221596ae2ae9fb8115c1e9ed0a44");

  const auto client_secret =
      hkdf_expand_label(initial_secret, "client in", {}, 32);
  EXPECT_EQ(to_hex(client_secret),
            "c00cf151ca5be075ed0ebfb5c80323c42d6b7db67881289af4008f1f6c357aea");

  const auto server_secret =
      hkdf_expand_label(initial_secret, "server in", {}, 32);
  EXPECT_EQ(to_hex(server_secret),
            "3c199828fd139efd216c155ad844cc81fb82fa8d7446fa7d78be803acdda951b");

  EXPECT_EQ(to_hex(hkdf_expand_label(client_secret, "quic key", {}, 16)),
            "1f369613dd76d5467730efcbe3b1a22d");
  EXPECT_EQ(to_hex(hkdf_expand_label(client_secret, "quic iv", {}, 12)),
            "fa044b2f42a3fd3b46fb255c");
  EXPECT_EQ(to_hex(hkdf_expand_label(client_secret, "quic hp", {}, 16)),
            "9f50449e04a0e810283a1e9933adedd2");
  EXPECT_EQ(to_hex(hkdf_expand_label(server_secret, "quic key", {}, 16)),
            "cf3a5331653c364c88f0f379b6067e37");
  EXPECT_EQ(to_hex(hkdf_expand_label(server_secret, "quic iv", {}, 12)),
            "0ac1493ca1905853b0bba03e");
  EXPECT_EQ(to_hex(hkdf_expand_label(server_secret, "quic hp", {}, 16)),
            "c206b8d9b9f0f37644430b490eeaa314");
}

}  // namespace
}  // namespace quicsand::crypto
