// Error paths of the live capture subsystem: sockets that cannot bind,
// ports the OS picks, and the hostile datagrams a public UDP port
// attracts. The sensor's contract is "count, never crash".
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/live/frame.hpp"
#include "net/live/receiver.hpp"
#include "net/live/sender.hpp"
#include "net/live/socket.hpp"
#include "net/packet.hpp"

namespace quicsand::net::live {
namespace {

using namespace std::chrono_literals;

/// Spin until `predicate` holds or ~2 s elapse (socket delivery is
/// asynchronous; loopback latency is microseconds, CI headroom is not).
template <typename Predicate>
bool eventually(Predicate predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

TEST(NetLiveError, BindFailureReportsError) {
  LiveReceiverConfig config;
  // TEST-NET-3 (RFC 5737): never assigned to a local interface, so the
  // bind must fail with EADDRNOTAVAIL rather than hang or abort.
  config.host = "203.0.113.7";
  config.port = 0;
  LiveReceiver receiver(config);
  EXPECT_FALSE(receiver.start([](std::size_t, const net::RawPacket&,
                                  const DatagramTiming&) {}));
  EXPECT_FALSE(receiver.last_error().empty());
  EXPECT_FALSE(receiver.running());
  receiver.stop();  // must be a safe no-op after a failed start
}

TEST(NetLiveError, PortCollisionFailsSecondBind) {
  LiveReceiverConfig config;
  config.port = 0;
  LiveReceiver first(config);
  if (!first.start([](std::size_t, const net::RawPacket&,
                                  const DatagramTiming&) {})) {
    GTEST_SKIP() << "loopback sockets unavailable: " << first.last_error();
  }
  config.port = first.port();
  LiveReceiver second(config);
  EXPECT_FALSE(second.start([](std::size_t, const net::RawPacket&,
                                  const DatagramTiming&) {}));
  EXPECT_FALSE(second.last_error().empty());
  first.stop();
}

TEST(NetLiveError, PortZeroReportsChosenPortAndReceives) {
  LiveReceiverConfig config;
  config.port = 0;
  LiveReceiver receiver(config);
  std::atomic<std::uint64_t> sunk{0};
  if (!receiver.start(
          [&](std::size_t, const net::RawPacket&, const DatagramTiming&) {
            ++sunk;
          })) {
    GTEST_SKIP() << "loopback sockets unavailable: "
                 << receiver.last_error();
  }
  ASSERT_NE(receiver.port(), 0) << "port 0 must resolve to a real port";

  UdpSocket sender;
  ASSERT_TRUE(sender.connect("127.0.0.1", receiver.port()))
      << sender.last_error();
  const std::vector<std::vector<std::uint8_t>> payloads = {
      encode_live_frame(util::Timestamp{1000}, std::vector<std::uint8_t>(
                                                   40, 0x45))};
  ASSERT_EQ(sender.send_batch(payloads), 1u);
  EXPECT_TRUE(eventually([&] { return sunk.load() == 1; }))
      << "datagram sent to the reported port never arrived";
  receiver.stop();
  EXPECT_EQ(receiver.received(), 1u);
  EXPECT_EQ(receiver.delivered(), 1u);
}

TEST(NetLiveError, GarbageDatagramsAreCountedNotFatal) {
  LiveReceiverConfig config;
  config.port = 0;
  LiveReceiver receiver(config);
  std::atomic<std::uint64_t> sunk{0};
  if (!receiver.start(
          [&](std::size_t, const net::RawPacket&, const DatagramTiming&) {
            ++sunk;
          })) {
    GTEST_SKIP() << "loopback sockets unavailable: "
                 << receiver.last_error();
  }
  UdpSocket sender;
  ASSERT_TRUE(sender.connect("127.0.0.1", receiver.port()));

  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back({});                          // zero-length datagram
  payloads.push_back({0xde, 0xad});                // far too short
  payloads.push_back(std::vector<std::uint8_t>(19, 0x45));  // 1 byte shy
  payloads.push_back(std::vector<std::uint8_t>(64, 0x60));  // IPv6 nibble
  payloads.push_back({'Q', 'S', 'L', '1', 0xaa});  // truncated QSL1 frame
  const auto sent = sender.send_batch(payloads);
  ASSERT_EQ(sent, payloads.size()) << sender.last_error();

  // A zero-length UDP datagram is legal and must still be delivered.
  EXPECT_TRUE(eventually([&] { return sunk.load() == payloads.size(); }))
      << "received " << receiver.received() << ", undecodable "
      << receiver.undecodable();
  receiver.stop();
  EXPECT_EQ(receiver.received(), payloads.size());
  EXPECT_EQ(receiver.delivered(), payloads.size());
  EXPECT_EQ(receiver.undecodable(), payloads.size());
  EXPECT_EQ(receiver.dropped_ring(), 0u);
}

TEST(NetLiveError, SenderConnectFailureReportsError) {
  LiveSenderConfig config;
  config.host = "name-that-does-not-resolve.invalid";
  config.port = 4433;
  LiveSender sender(config);
  const auto stats = sender.send_stream(
      []() -> std::optional<net::RawPacket> { return std::nullopt; });
  EXPECT_EQ(stats.sent, 0u);
  EXPECT_FALSE(sender.last_error().empty());
}

TEST(NetLiveError, ParseRateModeRejectsUnknownNames) {
  EXPECT_TRUE(parse_rate_mode("constant").has_value());
  EXPECT_TRUE(parse_rate_mode("burst").has_value());
  EXPECT_TRUE(parse_rate_mode("ramp").has_value());
  EXPECT_TRUE(parse_rate_mode("chaos").has_value());
  EXPECT_FALSE(parse_rate_mode("").has_value());
  EXPECT_FALSE(parse_rate_mode("Constant").has_value());
  EXPECT_FALSE(parse_rate_mode("bursty").has_value());
}

TEST(NetLiveFrame, EdgeCases) {
  // Empty payload: bare, empty datagram.
  {
    const auto frame = parse_live_frame({});
    EXPECT_FALSE(frame.encapsulated);
    EXPECT_TRUE(frame.datagram.empty());
  }
  // Magic alone (4 bytes): too short for the header, treated as bare so
  // the bytes are not silently eaten.
  {
    const std::vector<std::uint8_t> payload = {'Q', 'S', 'L', '1'};
    const auto frame = parse_live_frame(payload);
    EXPECT_FALSE(frame.encapsulated);
    EXPECT_EQ(frame.datagram.size(), payload.size());
  }
  // Magic + 7 bytes: one byte short of a full header, still bare.
  {
    std::vector<std::uint8_t> payload = {'Q', 'S', 'L', '1'};
    payload.resize(kFrameHeaderSize - 1, 0x00);
    const auto frame = parse_live_frame(payload);
    EXPECT_FALSE(frame.encapsulated);
    EXPECT_EQ(frame.datagram.size(), payload.size());
  }
  // Exactly the header: encapsulated, empty datagram.
  {
    const auto encoded = encode_live_frame(util::Timestamp{42}, {});
    ASSERT_EQ(encoded.size(), kFrameHeaderSize);
    const auto frame = parse_live_frame(encoded);
    EXPECT_TRUE(frame.encapsulated);
    EXPECT_EQ(frame.timestamp, util::Timestamp{42});
    EXPECT_TRUE(frame.datagram.empty());
  }
  // Round-trip with a payload and a negative-epoch timestamp.
  {
    const std::vector<std::uint8_t> datagram = {1, 2, 3, 4, 5};
    const auto encoded =
        encode_live_frame(util::Timestamp{-7}, datagram);
    const auto frame = parse_live_frame(encoded);
    EXPECT_TRUE(frame.encapsulated);
    EXPECT_EQ(frame.timestamp, util::Timestamp{-7});
    ASSERT_EQ(frame.datagram.size(), datagram.size());
    EXPECT_TRUE(std::equal(frame.datagram.begin(), frame.datagram.end(),
                           datagram.begin()));
  }
}

TEST(NetLiveFrame, QuickSourceMirrorsDecoderPreconditions) {
  EXPECT_EQ(quick_ipv4_source({}), std::nullopt);
  std::vector<std::uint8_t> datagram(20, 0);
  datagram[0] = 0x45;
  datagram[12] = 10;
  datagram[13] = 20;
  datagram[14] = 30;
  datagram[15] = 40;
  const auto source = quick_ipv4_source(datagram);
  ASSERT_TRUE(source.has_value());
  EXPECT_EQ(*source, (10u << 24) | (20u << 16) | (30u << 8) | 40u);
  datagram[0] = 0x65;  // version 6 nibble
  EXPECT_EQ(quick_ipv4_source(datagram), std::nullopt);
  datagram.resize(19);
  datagram[0] = 0x45;
  EXPECT_EQ(quick_ipv4_source(datagram), std::nullopt);
}

}  // namespace
}  // namespace quicsand::net::live
