// TimeSeriesStore / Sampler / FlightRecorder: downsampling semantics at
// tier boundaries, ring wraparound at the retention edge, query-range
// behavior, and byte-pinned golden JSON under an injected manual clock.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tsdb.hpp"

using namespace quicsand;

namespace {

constexpr std::uint64_t kSecUs = 1'000'000;

/// A 3-tier store small enough to wrap in a test: 1 s x 4, 10 s x 6,
/// 60 s x 5.
obs::TsdbConfig tiny_config() {
  obs::TsdbConfig config;
  config.tiers = {{1 * util::kSecond, 4},
                  {10 * util::kSecond, 6},
                  {60 * util::kSecond, 5}};
  return config;
}

TEST(TimeSeriesStore, AggregatesWithinOneBucket) {
  obs::TimeSeriesStore store(tiny_config());
  // Three raw samples inside the same 1 s bucket.
  EXPECT_TRUE(store.record("x", obs::SeriesKind::kGauge, 5 * kSecUs + 100, 7));
  EXPECT_TRUE(store.record("x", obs::SeriesKind::kGauge, 5 * kSecUs + 200, 3));
  EXPECT_TRUE(store.record("x", obs::SeriesKind::kGauge, 5 * kSecUs + 300, 5));

  const auto result = store.query("x", 0, 10 * kSecUs, 0);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.step_us, kSecUs);
  ASSERT_EQ(result.points.size(), 1u);
  const auto& p = result.points[0];
  EXPECT_EQ(p.t_us, 5 * kSecUs);
  EXPECT_EQ(p.min, 3);
  EXPECT_EQ(p.max, 7);
  EXPECT_EQ(p.sum, 15);
  EXPECT_EQ(p.last, 5);
  EXPECT_EQ(p.count, 3u);
}

TEST(TimeSeriesStore, TierBoundaryDownsampling) {
  obs::TimeSeriesStore store(tiny_config());
  // One sample per second for 20 s: tier 0 (1 s) sees one sample per
  // bucket, tier 1 (10 s) folds ten raw samples into each bucket.
  for (std::uint64_t t = 0; t < 20; ++t) {
    store.record("c", obs::SeriesKind::kCounter, t * kSecUs,
                 static_cast<std::int64_t>(t * 100));
  }
  // Asking for the full range at 10 s resolution hits tier 1.
  const auto coarse = store.query("c", 0, 20 * kSecUs, 10 * kSecUs);
  ASSERT_TRUE(coarse.found);
  EXPECT_EQ(coarse.step_us, 10 * kSecUs);
  ASSERT_EQ(coarse.points.size(), 2u);
  // Bucket [0,10): raw values 0..900.
  EXPECT_EQ(coarse.points[0].t_us, 0u);
  EXPECT_EQ(coarse.points[0].min, 0);
  EXPECT_EQ(coarse.points[0].max, 900);
  EXPECT_EQ(coarse.points[0].sum, 4500);
  EXPECT_EQ(coarse.points[0].last, 900);
  EXPECT_EQ(coarse.points[0].count, 10u);
  // Bucket [10,20): raw values 1000..1900.
  EXPECT_EQ(coarse.points[1].t_us, 10 * kSecUs);
  EXPECT_EQ(coarse.points[1].min, 1000);
  EXPECT_EQ(coarse.points[1].max, 1900);
  EXPECT_EQ(coarse.points[1].last, 1900);
  EXPECT_EQ(coarse.points[1].count, 10u);

  // The finest tier only retains its 4-bucket window ending at the
  // newest sample (16..19 s); asking for exactly that window stays on
  // tier 0.
  const auto fine = store.query("c", 16 * kSecUs, 20 * kSecUs, 0);
  EXPECT_EQ(fine.step_us, kSecUs);
  ASSERT_EQ(fine.points.size(), 4u);
  EXPECT_EQ(fine.points.front().t_us, 16 * kSecUs);
  EXPECT_EQ(fine.points.back().t_us, 19 * kSecUs);
  EXPECT_EQ(fine.points.back().last, 1900);
}

TEST(TimeSeriesStore, RingWraparoundEvictsOldBuckets) {
  obs::TimeSeriesStore store(tiny_config());
  // 100 one-second buckets through a 4-slot tier-0 ring: ~25 full
  // wraps. Only the last 4 survive, each with exactly its own value.
  for (std::uint64_t t = 0; t < 100; ++t) {
    store.record("w", obs::SeriesKind::kGauge, t * kSecUs,
                 static_cast<std::int64_t>(t));
  }
  const auto result = store.query("w", 96 * kSecUs, 200 * kSecUs, 0);
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.points.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.points[i].t_us, (96 + i) * kSecUs);
    EXPECT_EQ(result.points[i].last, static_cast<std::int64_t>(96 + i));
    EXPECT_EQ(result.points[i].count, 1u);
  }
  // A sample older than the ring's window is ignored, not resurrected:
  // the slot for t=97 still holds bucket 97 after a stale write of
  // t=93 (same slot modulo 4).
  store.record("w", obs::SeriesKind::kGauge, 93 * kSecUs, 9999);
  const auto after = store.query("w", 96 * kSecUs, 100 * kSecUs, 0);
  ASSERT_EQ(after.points.size(), 4u);
  EXPECT_EQ(after.points[1].t_us, 97 * kSecUs);
  EXPECT_EQ(after.points[1].last, 97);
}

TEST(TimeSeriesStore, EmptyAndReversedRanges) {
  obs::TimeSeriesStore store(tiny_config());
  store.record("e", obs::SeriesKind::kCounter, 50 * kSecUs, 1);
  // A range entirely before retention: empty points, series still found.
  const auto early = store.query("e", 0, 10 * kSecUs, 0);
  EXPECT_TRUE(early.found);
  EXPECT_TRUE(early.points.empty());
  // A range entirely after the data.
  const auto late = store.query("e", 300 * kSecUs, 400 * kSecUs, 0);
  EXPECT_TRUE(late.found);
  EXPECT_TRUE(late.points.empty());
  // Reversed range: empty, not fatal.
  const auto reversed = store.query("e", 60 * kSecUs, 40 * kSecUs, 0);
  EXPECT_TRUE(reversed.found);
  EXPECT_TRUE(reversed.points.empty());
  // Unknown series.
  EXPECT_FALSE(store.query("nope", 0, 100, 0).found);
}

TEST(TimeSeriesStore, TierEscalationForOldRanges) {
  obs::TimeSeriesStore store(tiny_config());
  // 120 s of data: tier 0 retains 4 s, tier 1 retains 60 s, tier 2 all.
  for (std::uint64_t t = 0; t < 120; ++t) {
    store.record("h", obs::SeriesKind::kCounter, t * kSecUs,
                 static_cast<std::int64_t>(t));
  }
  // from within the finest window: finest tier.
  EXPECT_EQ(store.query("h", 117 * kSecUs, 120 * kSecUs, 0).step_us, kSecUs);
  // from 80 s back: needs tier 1 (10 s).
  EXPECT_EQ(store.query("h", 70 * kSecUs, 120 * kSecUs, 0).step_us,
            10 * kSecUs);
  // from the very beginning: coarsest tier.
  EXPECT_EQ(store.query("h", 0, 120 * kSecUs, 0).step_us, 60 * kSecUs);
  // A short-lived series queried with from=0 stays on the finest tier:
  // `from` is clamped to the series' first sample before escalation.
  store.record("young", obs::SeriesKind::kGauge, 119 * kSecUs, 1);
  EXPECT_EQ(store.query("young", 0, 200 * kSecUs, 0).step_us, kSecUs);
}

TEST(TimeSeriesStore, SeriesCapDropsAndCounts) {
  obs::TsdbConfig config = tiny_config();
  config.max_series = 2;
  obs::TimeSeriesStore store(config);
  EXPECT_TRUE(store.record("a", obs::SeriesKind::kCounter, 0, 1));
  EXPECT_TRUE(store.record("b", obs::SeriesKind::kCounter, 0, 1));
  EXPECT_FALSE(store.record("c", obs::SeriesKind::kCounter, 0, 1));
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.series_dropped(), 1u);
  // Existing series keep recording.
  EXPECT_TRUE(store.record("a", obs::SeriesKind::kCounter, kSecUs, 2));
}

TEST(TimeSeriesStore, RatePerSecondFromFinestTier) {
  obs::TimeSeriesStore store(tiny_config());
  // 100 packets/s for 4 s.
  for (std::uint64_t t = 0; t < 4; ++t) {
    store.record("pps", obs::SeriesKind::kCounter, t * kSecUs,
                 static_cast<std::int64_t>(t * 100));
  }
  EXPECT_DOUBLE_EQ(store.rate_per_s("pps", 10 * util::kSecond), 100.0);
  EXPECT_DOUBLE_EQ(store.rate_per_s("nope", 10 * util::kSecond), 0.0);
}

TEST(TimeSeriesStore, AnnotationRingEvictsOldest) {
  obs::TsdbConfig config = tiny_config();
  config.max_annotations = 2;
  obs::TimeSeriesStore store(config);
  for (std::uint64_t i = 0; i < 3; ++i) {
    obs::Annotation a;
    a.t_us = i * kSecUs;
    a.kind = "alert_fired";
    a.victim = "10.0.0." + std::to_string(i);
    store.annotate(a);
  }
  const auto kept = store.annotations(0, 10 * kSecUs);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].victim, "10.0.0.1");
  EXPECT_EQ(kept[1].victim, "10.0.0.2");
}

TEST(TimeSeriesStore, GoldenQueryJson) {
  obs::TimeSeriesStore store(tiny_config());
  store.record("g", obs::SeriesKind::kCounter, 10 * kSecUs, 5);
  store.record("g", obs::SeriesKind::kCounter, 11 * kSecUs, 9);
  obs::Annotation a;
  a.t_us = 11 * kSecUs;
  a.event_time_us = 1500000;
  a.kind = "alert_fired";
  a.victim = "203.0.113.7";
  a.packets = 4200;
  a.peak_pps = 123.5;
  store.annotate(a);

  EXPECT_EQ(store.query_json("g", 0, 20 * kSecUs, 0),
            "{\"series\": \"g\", \"kind\": \"counter\", \"step_us\": 1000000,"
            " \"columns\": [\"t_us\", \"min\", \"max\", \"sum\", \"count\","
            " \"last\"], \"points\": [[10000000, 5, 5, 5, 1, 5],"
            " [11000000, 9, 9, 9, 1, 9]], \"annotations\":"
            " [{\"t_us\": 11000000, \"event_time_us\": 1500000,"
            " \"kind\": \"alert_fired\", \"victim\": \"203.0.113.7\","
            " \"packets\": 4200, \"peak_pps\": 123.500}]}\n");

  EXPECT_EQ(store.series_json(),
            "{\"tiers\": [{\"step_us\": 1000000, \"buckets\": 4},"
            " {\"step_us\": 10000000, \"buckets\": 6},"
            " {\"step_us\": 60000000, \"buckets\": 5}], \"series\":"
            " [{\"name\": \"g\", \"kind\": \"counter\", \"samples\": 2,"
            " \"first_us\": 10000000, \"last_us\": 11000000}],"
            " \"dropped_series\": 0}\n");
}

TEST(Sampler, SamplesRegistryAndDrainsEvents) {
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  obs::TimeSeriesStore store(tiny_config());

  auto& packets = metrics.counter("pipeline.packets");
  auto& depth = metrics.gauge("rings.depth");
  auto& latency = metrics.histogram("alert.latency_us", {100, 1000});

  std::uint64_t now_us = 100 * kSecUs;
  obs::SamplerConfig config;
  config.metrics = &metrics;
  config.store = &store;
  config.events = &events;
  config.clock = [&now_us] { return now_us; };
  config.self_metrics = false;  // keep the series catalog exact
  obs::Sampler sampler(config);

  packets.add(500);
  depth.set(7);
  latency.observe(50);
  latency.observe(2000);
  sampler.sample_once();

  obs::DetectorEvent event;
  event.type = obs::DetectorEventType::kAlertFired;
  event.time = util::Timestamp{} + 42 * util::kSecond;
  event.victim = "198.51.100.9";
  event.packets = 9000;
  event.peak_pps = 777.25;
  events.emit(event);

  now_us += kSecUs;
  packets.add(250);
  sampler.sample_once();

  // Counter, gauge, and the histogram's .count/.sum series all exist.
  const auto catalog = store.series();
  std::vector<std::string> names;
  names.reserve(catalog.size());
  for (const auto& info : catalog) names.push_back(info.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"alert.latency_us.count",
                                      "alert.latency_us.sum",
                                      "pipeline.packets", "rings.depth"}));

  const auto counter = store.query("pipeline.packets", 0, now_us, 0);
  ASSERT_EQ(counter.points.size(), 2u);
  EXPECT_EQ(counter.points[0].last, 500);
  EXPECT_EQ(counter.points[1].last, 750);
  EXPECT_EQ(counter.kind, obs::SeriesKind::kCounter);

  const auto gauge = store.query("rings.depth", 0, now_us, 0);
  EXPECT_EQ(gauge.kind, obs::SeriesKind::kGauge);
  EXPECT_EQ(gauge.points.back().last, 7);

  const auto hist_sum = store.query("alert.latency_us.sum", 0, now_us, 0);
  EXPECT_EQ(hist_sum.kind, obs::SeriesKind::kHistogramSum);
  EXPECT_EQ(hist_sum.points.back().last, 2050);

  // The event became an annotation pinned at the second sample pass,
  // keeping its own timestamp as event_time_us.
  const auto annotations = store.annotations(0, now_us);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].t_us, now_us);
  EXPECT_EQ(annotations[0].event_time_us, (42 * util::kSecond).count());
  EXPECT_EQ(annotations[0].kind, "alert_fired");
  EXPECT_EQ(annotations[0].victim, "198.51.100.9");
  EXPECT_EQ(annotations[0].packets, 9000u);
  EXPECT_DOUBLE_EQ(annotations[0].peak_pps, 777.25);

  // Each event is drained exactly once.
  now_us += kSecUs;
  sampler.sample_once();
  EXPECT_EQ(store.annotations(0, now_us).size(), 1u);
  EXPECT_EQ(sampler.passes(), 3u);
}

TEST(Sampler, ThreadedStartStopTakesFinalSample) {
  obs::MetricsRegistry metrics;
  obs::TimeSeriesStore store(tiny_config());
  metrics.counter("c").add(3);

  obs::SamplerConfig config;
  config.metrics = &metrics;
  config.store = &store;
  config.cadence = 10 * util::kMillisecond;
  obs::Sampler sampler(config);
  ASSERT_TRUE(sampler.start());
  EXPECT_TRUE(sampler.running());
  while (sampler.passes() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.passes(), 3u);  // >= 2 cadence passes + the final one
  EXPECT_GT(store.samples_recorded(), 0u);
}

TEST(Sampler, StartRequiresMetricsAndStore) {
  obs::Sampler missing(obs::SamplerConfig{});
  EXPECT_FALSE(missing.start());
}

TEST(FlightRecorder, GoldenDumpIsDeterministic) {
  obs::TimeSeriesStore store(tiny_config());
  store.record("pps", obs::SeriesKind::kCounter, 100 * kSecUs, 10);
  store.record("pps", obs::SeriesKind::kCounter, 101 * kSecUs, 30);
  obs::Annotation a;
  a.t_us = 101 * kSecUs;
  a.event_time_us = 55;
  a.kind = "attack_closed";
  a.victim = "192.0.2.1";
  a.packets = 77;
  a.peak_pps = 5.0;
  store.annotate(a);

  obs::FlightRecorderConfig config;
  config.store = &store;
  config.window = 30 * util::kSecond;  // clamped to tier-0 retention (4 s)
  obs::FlightRecorder recorder(config);

  const std::string expected =
      "{\"type\": \"meta\", \"now_us\": 101000000, \"from_us\": 97000000,"
      " \"window_s\": 4, \"series\": 1}\n"
      "{\"type\": \"sample\", \"series\": \"pps\", \"kind\": \"counter\","
      " \"t_us\": 100000000, \"min\": 10, \"max\": 10, \"sum\": 10,"
      " \"count\": 1, \"last\": 10}\n"
      "{\"type\": \"sample\", \"series\": \"pps\", \"kind\": \"counter\","
      " \"t_us\": 101000000, \"min\": 30, \"max\": 30, \"sum\": 30,"
      " \"count\": 1, \"last\": 30}\n"
      "{\"type\": \"annotation\", \"t_us\": 101000000,"
      " \"event_time_us\": 55, \"kind\": \"attack_closed\","
      " \"victim\": \"192.0.2.1\", \"packets\": 77,"
      " \"peak_pps\": 5.000}\n";
  EXPECT_EQ(recorder.dump_at(101 * kSecUs), expected);
  // Without a clock, dump() anchors at the store's newest sample: the
  // same bundle, byte for byte, run after run.
  EXPECT_EQ(recorder.dump(), expected);
  EXPECT_EQ(recorder.dump(), recorder.dump());
}

TEST(FlightRecorder, WindowClampsToFinestRetention) {
  obs::TimeSeriesStore store(tiny_config());  // finest tier holds 4 s
  for (std::uint64_t t = 0; t < 10; ++t) {
    store.record("g", obs::SeriesKind::kGauge, t * kSecUs,
                 static_cast<std::int64_t>(t));
  }
  obs::FlightRecorderConfig config;
  config.store = &store;
  config.window = 3600 * util::kSecond;  // way past retention
  obs::FlightRecorder recorder(config);
  const auto dump = recorder.dump_at(9 * kSecUs);
  // Only the finest tier's surviving buckets appear (6..9 s).
  EXPECT_EQ(dump.find("\"t_us\": 5000000"), std::string::npos);
  EXPECT_NE(dump.find("\"t_us\": 6000000"), std::string::npos);
  EXPECT_NE(dump.find("\"t_us\": 9000000"), std::string::npos);
}

// tsan coverage: a writer hammering record()/annotate() while readers
// run query()/series_json()/rate_per_s() concurrently.
TEST(TimeSeriesStore, ConcurrentRecordAndQuery) {
  obs::TimeSeriesStore store(tiny_config());
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      store.record("a", obs::SeriesKind::kCounter, t * kSecUs,
                   static_cast<std::int64_t>(t));
      store.record("b", obs::SeriesKind::kGauge, t * kSecUs,
                   static_cast<std::int64_t>(t % 7));
      if (t % 16 == 0) {
        obs::Annotation annotation;
        annotation.t_us = t * kSecUs;
        annotation.kind = "alert_fired";
        store.annotate(annotation);
      }
      ++t;
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)store.query("a", 0, 1'000'000 * kSecUs, 0);
        (void)store.series_json();
        (void)store.rate_per_s("a", 10 * util::kSecond);
        (void)store.annotations(0, 1'000'000 * kSecUs);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_GT(store.samples_recorded(), 0u);
}

// tsan coverage: a running sampler thread racing admin-style scrapes.
TEST(Sampler, ConcurrentSamplingAndScrapes) {
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  obs::TimeSeriesStore store(tiny_config());
  auto& counter = metrics.counter("pipeline.packets");

  obs::SamplerConfig config;
  config.metrics = &metrics;
  config.store = &store;
  config.events = &events;
  config.cadence = 1 * util::kMillisecond;
  obs::Sampler sampler(config);
  ASSERT_TRUE(sampler.start());

  std::atomic<bool> stop{false};
  std::thread ingest([&] {
    while (!stop.load(std::memory_order_relaxed)) counter.add();
  });
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.series_json();
      (void)store.query_json("pipeline.packets", 0, ~0ULL, 0);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  ingest.join();
  scraper.join();
  sampler.stop();
  EXPECT_GT(sampler.passes(), 0u);
}

// Regression: two stop() calls used to both pass the lock-free
// running() check and double-join the cadence thread (std::terminate).
// The lifecycle lock now serializes them; the losers must observe the
// already-joined thread and return, and the sampler must restart
// cleanly afterwards.
TEST(Sampler, ConcurrentStopsDoNotDoubleJoin) {
  obs::MetricsRegistry metrics;
  obs::TimeSeriesStore store(tiny_config());
  metrics.counter("c").add(1);

  obs::SamplerConfig config;
  config.metrics = &metrics;
  config.store = &store;
  config.cadence = 1 * util::kMillisecond;
  obs::Sampler sampler(config);

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(sampler.start());
    ASSERT_TRUE(sampler.start());  // idempotent: no second thread
    while (sampler.passes() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&] { sampler.stop(); });
    }
    for (auto& stopper : stoppers) stopper.join();
    EXPECT_FALSE(sampler.running());
  }
  EXPECT_GT(store.samples_recorded(), 0u);
}

}  // namespace
