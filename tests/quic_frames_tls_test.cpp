#include <gtest/gtest.h>

#include "quic/frames.hpp"
#include "quic/tls_messages.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

using util::ByteWriter;

std::vector<std::uint8_t> encode(std::initializer_list<Frame> frames) {
  ByteWriter w;
  for (const auto& f : frames) write_frame(w, f);
  return w.take();
}

TEST(Frames, PingRoundTrip) {
  const auto bytes = encode({PingFrame{}});
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x01);
  const auto frames = parse_frames(bytes);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);
  EXPECT_TRUE(std::holds_alternative<PingFrame>((*frames)[0]));
}

TEST(Frames, PaddingRunsCollapse) {
  const auto bytes = encode({PaddingFrame{10}});
  EXPECT_EQ(bytes.size(), 10u);
  const auto frames = parse_frames(bytes);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);
  EXPECT_EQ(std::get<PaddingFrame>((*frames)[0]).length, 10u);
}

TEST(Frames, CryptoRoundTrip) {
  util::Rng rng(1);
  CryptoFrame in;
  in.offset = 1200;
  in.data = rng.bytes(333);
  const auto bytes = encode({in});
  const auto frames = parse_frames(bytes);
  ASSERT_TRUE(frames.has_value());
  const auto& out = std::get<CryptoFrame>((*frames)[0]);
  EXPECT_EQ(out.offset, 1200u);
  EXPECT_EQ(out.data, in.data);
}

TEST(Frames, AckRoundTrip) {
  AckFrame in;
  in.largest_acknowledged = 100;
  in.ack_delay = 25;
  in.first_range = 3;
  in.ranges = {{1, 2}, {5, 10}};
  const auto bytes = encode({in});
  const auto frames = parse_frames(bytes);
  ASSERT_TRUE(frames.has_value());
  const auto& out = std::get<AckFrame>((*frames)[0]);
  EXPECT_EQ(out.largest_acknowledged, 100u);
  EXPECT_EQ(out.ack_delay, 25u);
  EXPECT_EQ(out.first_range, 3u);
  EXPECT_EQ(out.ranges, in.ranges);
}

TEST(Frames, ConnectionCloseBothFlavours) {
  ConnectionCloseFrame transport;
  transport.error_code = 0x0a;
  transport.frame_type = 0x06;
  transport.reason = "crypto failure";
  ConnectionCloseFrame app;
  app.application = true;
  app.error_code = 42;
  app.reason = "bye";
  const auto bytes = encode({transport, app});
  const auto frames = parse_frames(bytes);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 2u);
  const auto& t = std::get<ConnectionCloseFrame>((*frames)[0]);
  EXPECT_FALSE(t.application);
  EXPECT_EQ(t.frame_type, 0x06u);
  EXPECT_EQ(t.reason, "crypto failure");
  const auto& a = std::get<ConnectionCloseFrame>((*frames)[1]);
  EXPECT_TRUE(a.application);
  EXPECT_EQ(a.error_code, 42u);
}

TEST(Frames, HandshakeDoneRoundTrip) {
  const auto frames = parse_frames(encode({HandshakeDoneFrame{}}));
  ASSERT_TRUE(frames.has_value());
  EXPECT_TRUE(std::holds_alternative<HandshakeDoneFrame>((*frames)[0]));
}

TEST(Frames, MixedSequencePreservesOrder) {
  util::Rng rng(2);
  const auto bytes = encode({AckFrame{9, 1, 0, {}},
                             CryptoFrame{0, rng.bytes(50)}, PaddingFrame{20},
                             PingFrame{}});
  const auto frames = parse_frames(bytes);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 4u);
  EXPECT_TRUE(std::holds_alternative<AckFrame>((*frames)[0]));
  EXPECT_TRUE(std::holds_alternative<CryptoFrame>((*frames)[1]));
  EXPECT_TRUE(std::holds_alternative<PaddingFrame>((*frames)[2]));
  EXPECT_TRUE(std::holds_alternative<PingFrame>((*frames)[3]));
}

TEST(Frames, RejectsUnknownType) {
  const std::vector<std::uint8_t> bytes = {0x08, 0x00};  // STREAM frame
  EXPECT_FALSE(parse_frames(bytes).has_value());
}

TEST(Frames, RejectsTruncatedCrypto) {
  ByteWriter w;
  w.write_u8(0x06);
  w.write_u8(0x00);  // offset 0
  w.write_u8(0x30);  // length 48, but nothing follows
  EXPECT_FALSE(parse_frames(w.view()).has_value());
}

TEST(Frames, RejectsTruncatedAck) {
  const std::vector<std::uint8_t> bytes = {0x02, 0x05};
  EXPECT_FALSE(parse_frames(bytes).has_value());
}

TEST(Frames, FrameSizeMatchesEncoding) {
  util::Rng rng(3);
  const Frame frames[] = {PingFrame{}, PaddingFrame{17},
                          Frame{CryptoFrame{0, rng.bytes(100)}}};
  for (const auto& f : frames) {
    ByteWriter w;
    write_frame(w, f);
    EXPECT_EQ(frame_size(f), w.size());
  }
}

TEST(TlsMessages, ClientHelloParsesWithSni) {
  util::Rng rng(4);
  const auto ch = build_client_hello("www.google.com", rng);
  EXPECT_GT(ch.size(), 150u);
  const auto info = parse_tls_message(ch);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->type, TlsHandshakeType::kClientHello);
  EXPECT_EQ(info->body_length + 4, ch.size());
  ASSERT_TRUE(info->sni.has_value());
  EXPECT_EQ(*info->sni, "www.google.com");
  EXPECT_TRUE(is_client_hello(ch));
}

TEST(TlsMessages, ClientHelloWithoutSni) {
  util::Rng rng(5);
  const auto ch = build_client_hello("", rng);
  const auto info = parse_tls_message(ch);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->sni.has_value());
  EXPECT_TRUE(is_client_hello(ch));
}

TEST(TlsMessages, ServerHelloParses) {
  util::Rng rng(6);
  const auto sh = build_server_hello(rng);
  EXPECT_GT(sh.size(), 80u);
  const auto info = parse_tls_message(sh);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->type, TlsHandshakeType::kServerHello);
  EXPECT_FALSE(is_client_hello(sh));
}

TEST(TlsMessages, RejectsGarbage) {
  util::Rng rng(7);
  const auto junk = rng.bytes(100);
  // First byte of rng stream is extremely unlikely to be a valid type
  // with consistent length; force a clearly invalid case too.
  std::vector<std::uint8_t> bad = {0x99, 0x00, 0x00, 0x10};
  bad.resize(64, 0);
  EXPECT_FALSE(parse_tls_message(bad).has_value());
  EXPECT_FALSE(is_client_hello(junk));
}

TEST(TlsMessages, RejectsTruncatedBody) {
  util::Rng rng(8);
  auto ch = build_client_hello("example.org", rng);
  ch.resize(ch.size() / 2);  // body length now exceeds the buffer
  EXPECT_FALSE(parse_tls_message(ch).has_value());
}

TEST(TlsMessages, ClientHellosDifferAcrossRngDraws) {
  util::Rng rng(9);
  const auto a = build_client_hello("example.org", rng);
  const auto b = build_client_hello("example.org", rng);
  EXPECT_NE(a, b);  // random + session id + key share vary
  EXPECT_EQ(a.size(), b.size());
}

}  // namespace
}  // namespace quicsand::quic
