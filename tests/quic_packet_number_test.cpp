#include "quic/packet_number.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

// RFC 9000 Appendix A.2 worked example.
TEST(PacketNumberLength, Rfc9000AppendixA2Example) {
  // full_pn = 0xac5c02, largest_acked = 0xabe8b3 -> 16 bits (2 bytes).
  EXPECT_EQ(packet_number_length(0xac5c02, 0xabe8b3), 2);
  // full_pn = 0xace8fe, largest_acked = 0xabe8b3 -> 18 bits -> 3 bytes.
  EXPECT_EQ(packet_number_length(0xace8fe, 0xabe8b3), 3);
}

TEST(PacketNumberLength, FirstPacketNeedsFullValue) {
  EXPECT_EQ(packet_number_length(0, -1), 1);
  EXPECT_EQ(packet_number_length(200, -1), 2);
  EXPECT_EQ(packet_number_length(0xffff, -1), 3);
}

TEST(PacketNumberLength, ThrowsWhenRangeExceedsFourBytes) {
  EXPECT_THROW(packet_number_length(1ULL << 40, 0), std::invalid_argument);
}

// RFC 9000 Appendix A.3 worked example.
TEST(DecodePacketNumber, Rfc9000AppendixA3Example) {
  // largest = 0xa82f30ea, truncated = 0x9b32 (16 bits) -> 0xa82f9b32.
  EXPECT_EQ(decode_packet_number(0xa82f30ea, 0x9b32, 16), 0xa82f9b32u);
}

TEST(DecodePacketNumber, WindowWrapForward) {
  // Largest 0xff, next expected 0x100; truncated 0x00 over 8 bits must
  // decode forward to 0x100.
  EXPECT_EQ(decode_packet_number(0xff, 0x00, 8), 0x100u);
}

TEST(DecodePacketNumber, WindowWrapBackward) {
  // Expected 0x102, truncated 0xfe is closer behind: 0xfe.
  EXPECT_EQ(decode_packet_number(0x101, 0xfe, 8), 0xfeu);
}

TEST(DecodePacketNumber, RejectsBadBitWidth) {
  EXPECT_THROW(decode_packet_number(0, 0, 12), std::invalid_argument);
}

TEST(DecodePacketNumber, RoundTripsWithEncoder) {
  util::Rng rng(1);
  // Property: for any largest_acked and a full_pn within a sane distance,
  // encoding with packet_number_length() then decoding with
  // largest = full_pn - delta recovers full_pn.
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t largest_acked = rng.uniform(1ULL << 40);
    const std::uint64_t delta = 1 + rng.uniform(1 << 15);
    const std::uint64_t full_pn = largest_acked + delta;
    const int bytes = packet_number_length(
        full_pn, static_cast<std::int64_t>(largest_acked));
    const std::uint64_t truncated =
        full_pn & ((bytes == 8 ? 0 : (1ULL << (8 * bytes))) - 1);
    // The receiver has processed everything up to full_pn - 1 at worst
    // one window behind.
    const std::uint64_t receiver_largest = full_pn - 1;
    EXPECT_EQ(decode_packet_number(receiver_largest, truncated, 8 * bytes),
              full_pn)
        << "largest_acked=" << largest_acked << " full=" << full_pn;
  }
}

}  // namespace
}  // namespace quicsand::quic
