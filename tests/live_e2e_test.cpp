// Ground-truth loopback e2e: a full telescope day (research scans,
// botnet probes, misconfig noise, QUIC + TCP/ICMP floods) streamed over
// real UDP sockets through the live capture path, scored against the
// generator's planned-attack ledger.
//
// The pipeline under test is exactly `monitor --live`:
//
//   flood_lab-style sender (sendmmsg, QSL1 frames)
//     -> LiveReceiver (recvmmsg, shard-by-source, drop-oldest rings)
//     -> per-shard Classifier -> ShardedOnlineDetector
//
// Assertions: sender throughput (the harness must be able to stress the
// receiver, not trickle at it), exact packet accounting
// (sent == delivered + ring drops + kernel drops), metric export of the
// drop counters, and precision/recall floors against ground truth.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/online_shards.hpp"
#include "net/live/frame.hpp"
#include "net/live/receiver.hpp"
#include "net/live/sender.hpp"
#include "obs/metrics.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "telescope/scoring.hpp"

// Sanitizer instrumentation costs an order of magnitude of throughput;
// keep the correctness assertions at full strength but relax the rate
// floor so the tsan/asan presets can run this test too.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define QUICSAND_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define QUICSAND_SANITIZED 1
#endif
#endif

namespace quicsand {
namespace {

constexpr std::size_t kShards = 4;
#if defined(QUICSAND_SANITIZED)
constexpr double kSendRateFloor = 20000.0;
#else
constexpr double kSendRateFloor = 100000.0;
#endif
constexpr double kSendRateTarget = 150000.0;

telescope::ScenarioConfig mixed_scenario(std::uint64_t seed) {
  // Mirrors the differential-oracle scenario: scans and floods mixed,
  // small enough telescope that one day stays in the low hundreds of
  // thousands of packets.
  auto scenario = telescope::ScenarioConfig::april2021(1, seed);
  scenario.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  scenario.attacks.quic_attacks_per_day = 40;
  scenario.attacks.common_attacks_per_day = 120;
  scenario.botnet.sessions_per_day = 200;
  scenario.misconfig.sessions_per_day = 150;
  return scenario;
}

TEST(LiveE2E, MixedScanAndFloodOverLoopback) {
  const std::uint64_t seed = 11;
  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, seed);
  const auto scenario = mixed_scenario(seed);
  telescope::TelescopeGenerator generator(scenario, registry, deployment);

  // Pre-materialize the scenario so the sender measures socket
  // throughput, not generator throughput.
  std::vector<net::RawPacket> packets;
  generator.generate(
      [&](const net::RawPacket& packet) { packets.push_back(packet); });
  ASSERT_GT(packets.size(), 50000u) << "scenario unexpectedly small";

  obs::MetricsRegistry metrics;

  core::ShardedOnlineDetectorConfig detector_config;
  detector_config.shards = kShards;
  detector_config.detector.obs.metrics = &metrics;
  // Wall-clock source on: every alert must then carry an end-to-end
  // detection latency anchored at its first packet's QSL2 send stamp.
  detector_config.detector.wall_clock = net::live::wall_clock_us;
  core::ShardedOnlineDetector detector(detector_config);

  std::vector<std::unique_ptr<core::Classifier>> classifiers;
  for (std::size_t i = 0; i < kShards; ++i) {
    classifiers.push_back(
        std::make_unique<core::Classifier>(core::ClassifierConfig{}));
  }

  net::live::LiveReceiverConfig receiver_config;
  receiver_config.port = 0;
  receiver_config.shards = kShards;
  // Sized so ring drops stay incidental: the detector tolerates loss,
  // but the recall floor below should reflect detection quality, not
  // backpressure tuning.
  receiver_config.ring_capacity = std::size_t{1} << 17;
  receiver_config.rcvbuf_bytes = std::size_t{1} << 22;
  receiver_config.obs.metrics = &metrics;
  net::live::LiveReceiver receiver(receiver_config);
  if (!receiver.start([&](std::size_t shard, const net::RawPacket& packet,
                          const net::live::DatagramTiming& timing) {
        if (const auto record = classifiers[shard]->classify(packet)) {
          const core::IngestTiming ingest{timing.send_wall_us,
                                          timing.recv_wall_us};
          detector.consume(shard, *record, &ingest);
        }
      })) {
    GTEST_SKIP() << "loopback sockets unavailable: " << receiver.last_error();
  }
  ASSERT_NE(receiver.port(), 0);

  net::live::LiveSenderConfig sender_config;
  sender_config.port = receiver.port();
  sender_config.pps = kSendRateTarget;
  sender_config.mode = net::live::RateMode::kConstant;
  net::live::LiveSender sender(sender_config);
  std::size_t cursor = 0;
  const auto stats = sender.send_stream(
      [&]() -> std::optional<net::RawPacket> {
        if (cursor >= packets.size()) return std::nullopt;
        return packets[cursor++];
      });

  ASSERT_TRUE(sender.last_error().empty()) << sender.last_error();
  ASSERT_EQ(stats.send_failures, 0u);
  ASSERT_EQ(stats.sent, packets.size());
  // This floor doubles as the latency-sampling overhead gate: the
  // receiver runs with the default 1-in-64 deterministic sample and the
  // full path must still sustain 100k pps on loopback.
  EXPECT_GE(stats.achieved_pps, kSendRateFloor)
      << "harness too slow to stress the receiver: " << stats.achieved_pps
      << " pps over " << stats.elapsed_s << " s";

  // Every datagram the kernel did not drop must surface in received();
  // give the receiver a moment to drain the socket, then stop (which
  // drains the rings through the sinks).
  for (int i = 0; i < 2000; ++i) {
    if (receiver.received() + receiver.dropped_kernel() >= stats.sent) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.stop();

  // The accounting invariant, exactly: nothing lost without a counter.
  EXPECT_EQ(receiver.received() + receiver.dropped_kernel(), stats.sent);
  EXPECT_EQ(receiver.delivered() + receiver.dropped_ring() +
                receiver.dropped_kernel(),
            stats.sent)
      << "delivered=" << receiver.delivered()
      << " dropped_ring=" << receiver.dropped_ring()
      << " dropped_kernel=" << receiver.dropped_kernel();
  EXPECT_EQ(receiver.undecodable(), 0u)
      << "synthetic scenario datagrams must all decode";

  // The drop counters must be exported through the metrics registry.
  EXPECT_EQ(metrics.counter("live.received_packets").value(),
            receiver.received());
  EXPECT_EQ(metrics.counter("live.dropped_packets").value(),
            receiver.dropped_ring() + receiver.dropped_kernel());
  EXPECT_EQ(metrics.counter("live.delivered_packets").value(),
            receiver.delivered());

  const auto& attacks = detector.finish();
  ASSERT_GT(attacks.size(), 5u) << "too few detections to score";

  // Stage latency histograms: the 1-in-64 deterministic sample must
  // have populated every stage, with QSL2 send stamps anchoring wire
  // and e2e. Quantiles are sane for a loopback hop (well under a
  // minute) and ordered: a packet's e2e covers its queue wait.
  const auto wire = metrics.latency("live.latency.wire_us").snapshot();
  const auto ring = metrics.latency("live.latency.ring_us").snapshot();
  const auto process = metrics.latency("live.latency.process_us").snapshot();
  const auto e2e = metrics.latency("live.latency.e2e_us").snapshot();
  EXPECT_GT(wire.count, 100u);
  EXPECT_GT(ring.count, 100u);
  EXPECT_GT(process.count, 100u);
  EXPECT_GT(e2e.count, 100u);
  EXPECT_LT(wire.p99, 60'000'000u);
  EXPECT_LT(e2e.p99, 60'000'000u);
  // Pointwise e2e >= ring wait implies quantile domination; the 7%
  // slack covers both representatives' +-3.125% bucket error.
  EXPECT_GE(static_cast<double>(e2e.p99) * 1.07,
            static_cast<double>(ring.p50))
      << "e2e cannot undercut the queue wait";

  // Detection latency: the wall-clock source was wired, every consume
  // carried ingest stamps, so every alert recorded a detect latency.
  const auto detect = metrics.latency("live.detect_latency_us").snapshot();
  EXPECT_GT(detect.count, 0u);
  EXPECT_LE(detect.count, detector.alerts_fired());
  EXPECT_LT(detect.p99, 120'000'000u);

  // Pipeline-lag watermarks: per-shard skew gauges and ring high-water
  // marks exist for every shard (the high-water mark may be zero only
  // if that shard never got a packet, which the shuffle rules out).
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    const auto prefix = "live.shard" + std::to_string(shard);
    EXPECT_GE(metrics.gauge(prefix + ".lag_us").value(), 0);
    EXPECT_GT(metrics.gauge(prefix + ".ring_high_water").value(), 0);
  }

  const auto& truth = generator.ground_truth();
  const auto planned = truth.quic_attacks();
  ASSERT_FALSE(planned.empty());

  // Precision over every planned QUIC attack.
  const auto all = telescope::score_detections(attacks, planned);
  EXPECT_GE(all.precision(), 0.95)
      << all.matched_detected << "/" << all.detected << " detections matched";

  // Recall over the comfortably-detectable subset.
  const core::DosThresholds thresholds;
  std::vector<const telescope::PlannedAttack*> strong;
  for (const auto* plan : planned) {
    if (telescope::comfortably_detectable(*plan, thresholds)) {
      strong.push_back(plan);
    }
  }
  ASSERT_GT(strong.size(), 3u);
  const auto strong_score = telescope::score_detections(attacks, strong);
  EXPECT_GE(strong_score.recall(), 0.9)
      << strong_score.matched_planned << "/" << strong_score.planned
      << " comfortably-detectable attacks found";
}

TEST(LiveE2E, BareDatagramsFallBackToArrivalClock) {
  // Without QSL1 encapsulation the receiver stamps arrival time; the
  // datagrams must still flow through to the sinks with sane timestamps.
  net::live::LiveReceiverConfig receiver_config;
  receiver_config.port = 0;
  receiver_config.shards = 1;
  net::live::LiveReceiver receiver(receiver_config);
  std::atomic<std::uint64_t> sunk{0};
  util::Timestamp first_seen{};
  std::atomic<std::int64_t> max_send_stamp{-1};
  if (!receiver.start([&](std::size_t, const net::RawPacket& packet,
                          const net::live::DatagramTiming& timing) {
        if (sunk.fetch_add(1) == 0) first_seen = packet.timestamp;
        // Bare payloads carry no QSL2 send stamp; the receiver must
        // report it as absent, never invent one.
        if (timing.send_wall_us > max_send_stamp.load()) {
          max_send_stamp.store(timing.send_wall_us);
        }
      })) {
    GTEST_SKIP() << "loopback sockets unavailable: " << receiver.last_error();
  }

  net::live::LiveSenderConfig sender_config;
  sender_config.port = receiver.port();
  sender_config.pps = 1000;
  sender_config.encapsulate = false;
  net::live::LiveSender sender(sender_config);
  // A minimal IPv4 header so the source-sharding peek succeeds.
  std::vector<std::uint8_t> datagram(28, 0);
  datagram[0] = 0x45;
  datagram[12] = 192;
  int remaining = 32;
  const auto stats = sender.send_stream(
      [&]() -> std::optional<net::RawPacket> {
        if (remaining-- <= 0) return std::nullopt;
        return net::RawPacket(util::Timestamp{0}, datagram);
      });
  ASSERT_EQ(stats.sent, 32u);

  for (int i = 0; i < 2000 && sunk.load() < 32; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.stop();
  ASSERT_EQ(sunk.load(), 32u);
  // Arrival timestamps come from the wall clock: after 2020, not the
  // epoch the (zeroed) scenario timestamp would suggest.
  EXPECT_GT(first_seen, util::Timestamp{1577836800LL * 1000000LL});
  EXPECT_EQ(receiver.undecodable(), 0u);
  EXPECT_EQ(max_send_stamp.load(), -1);
}

}  // namespace
}  // namespace quicsand
