// Entry-point boilerplate shared by every fuzz binary.
//
// QUICSAND_FUZZ_ENTRY("name") expands to both interfaces a target needs:
//  * LLVMFuzzerTestOneInput — link with clang -fsanitize=fuzzer
//    (-DQUICSAND_LIBFUZZER=ON) for coverage-guided exploration;
//  * main() via fuzz::driver_main — the deterministic CI driver
//    (omitted under QUICSAND_LIBFUZZER, which supplies its own main).
#pragma once

#include <cstdint>

#include "fuzz/driver.hpp"
#include "fuzz/targets.hpp"

#ifdef QUICSAND_LIBFUZZER
#define QUICSAND_FUZZ_ENTRY(target)                                         \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,           \
                                        std::size_t size) {                 \
    quicsand::fuzz::run_target(target, {data, size});                       \
    return 0;                                                               \
  }
#else
#define QUICSAND_FUZZ_ENTRY(target)                                         \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,           \
                                        std::size_t size) {                 \
    quicsand::fuzz::run_target(target, {data, size});                       \
    return 0;                                                               \
  }                                                                         \
  int main(int argc, char** argv) {                                         \
    return quicsand::fuzz::driver_main(target, argc, argv);                 \
  }
#endif
