#include "fuzz_entry.hpp"

QUICSAND_FUZZ_ENTRY("live_datagram")
