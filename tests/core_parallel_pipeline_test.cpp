// Differential serial-vs-parallel harness: ParallelPipeline must produce
// byte-identical analysis products to the serial Pipeline — hourly
// series, classifier stats, record stream, session lists, timeout sweep
// and detected attacks — for every shard count, including non-powers of
// two. Also exercises the ThreadPool and ShardedCounter primitives the
// parallel path is built on (run these under the `tsan` preset).
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>

#include "asdb/registry.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "util/sharded_counter.hpp"
#include "util/thread_pool.hpp"

namespace quicsand::core {
namespace {

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(hits.size(), [&](std::size_t index, std::size_t worker) {
    ASSERT_LT(worker, pool.size());
    ++hits[index];
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  util::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&total](std::size_t) { ++total; });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsBecomesOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&ran](std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++ran;
  });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ShardedCounterTest, MergedSumsAllRows) {
  util::ShardedCounter counter(3, 5);
  counter.add(0, 1);
  counter.add(1, 1, 4);
  counter.add(2, 1);
  counter.add(2, 4, 7);
  const auto merged = counter.merged();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[1], 6u);
  EXPECT_EQ(merged[4], 7u);
  EXPECT_EQ(merged[0] + merged[2] + merged[3], 0u);
}

TEST(ShardedCounterTest, ShardOfIsDeterministicAndInRange) {
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (std::uint32_t key = 0; key < 1000; ++key) {
      const auto s = util::shard_of(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, util::shard_of(key, shards));
    }
  }
  // The mix spreads consecutive IPs across shards rather than clumping.
  std::vector<std::size_t> counts(7, 0);
  for (std::uint32_t key = 0; key < 7000; ++key) {
    ++counts[util::shard_of(key, 7)];
  }
  for (const auto count : counts) EXPECT_GT(count, 500u);
}

const asdb::AsRegistry& test_registry() {
  static const auto instance = asdb::AsRegistry::synthetic({}, 2021);
  return instance;
}

const scanner::Deployment& test_deployment() {
  static const auto instance =
      scanner::Deployment::synthetic(test_registry(), {}, 2021);
  return instance;
}

struct TestScenario {
  std::vector<net::RawPacket> packets;
  PipelineOptions options;
};

/// One-day, small-telescope version of the paper's mixture, with the
/// research scanners kept in so the research hourly series and the
/// sanitization paths are exercised too.
const TestScenario& scenario() {
  static const TestScenario instance = [] {
    auto config = telescope::ScenarioConfig::april2021(1, 97);
    config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
    config.attacks.quic_attacks_per_day = 60;
    config.attacks.common_attacks_per_day = 150;
    config.botnet.sessions_per_day = 300;
    config.misconfig.sessions_per_day = 200;

    TestScenario scenario;
    scenario.options.window_start = config.start;
    scenario.options.days = config.days;
    scenario.options.research_prefixes.push_back(
        test_registry().prefixes_of(asdb::AsRegistry::kTumScanner).front());
    scenario.options.research_prefixes.push_back(
        test_registry().prefixes_of(asdb::AsRegistry::kRwthScanner).front());

    telescope::TelescopeGenerator generator(config, test_registry(),
                                            test_deployment());
    generator.generate([&](const net::RawPacket& packet) {
      scenario.packets.push_back(packet);
    });
    return scenario;
  }();
  return instance;
}

Pipeline& serial_pipeline() {
  static Pipeline instance = [] {
    Pipeline pipeline(scenario().options);
    for (const auto& packet : scenario().packets) pipeline.consume(packet);
    return pipeline;
  }();
  return instance;
}

std::unique_ptr<ParallelPipeline> parallel_pipeline(std::size_t shards) {
  ParallelPipelineOptions options;
  options.base = scenario().options;
  options.shards = shards;
  // Small batches so multiple classification tasks are actually in
  // flight even on the one-day scenario.
  options.batch_size = 512;
  auto pipeline = std::make_unique<ParallelPipeline>(std::move(options));
  for (const auto& packet : scenario().packets) pipeline->consume(packet);
  pipeline->finish();
  return pipeline;
}

void expect_stats_equal(const ClassifierStats& a, const ClassifierStats& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.undecodable, b.undecodable);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.research, b.research);
  EXPECT_EQ(a.research_requests, b.research_requests);
  EXPECT_EQ(a.quic_port_rejects, b.quic_port_rejects);
}

constexpr std::size_t kShardCounts[] = {1, 2, 4, 7};

TEST(ParallelPipelineDifferentialTest, StatsHourlyAndRecordsMatchSerial) {
  Pipeline& serial = serial_pipeline();
  ASSERT_FALSE(serial.records().empty());
  for (const auto shards : kShardCounts) {
    SCOPED_TRACE(shards);
    auto parallel = parallel_pipeline(shards);
    expect_stats_equal(parallel->stats(), serial.stats());
    EXPECT_EQ(parallel->hourly().research_quic, serial.hourly().research_quic);
    EXPECT_EQ(parallel->hourly().other_quic, serial.hourly().other_quic);
    EXPECT_EQ(parallel->hourly().quic_requests, serial.hourly().quic_requests);
    EXPECT_EQ(parallel->hourly().quic_responses,
              serial.hourly().quic_responses);
    const auto records = parallel->records();
    ASSERT_EQ(records.size(), serial.records().size());
    EXPECT_TRUE(std::equal(records.begin(), records.end(),
                           serial.records().begin()));
  }
}

TEST(ParallelPipelineDifferentialTest, SessionListsMatchSerial) {
  Pipeline& serial = serial_pipeline();
  for (const auto shards : kShardCounts) {
    SCOPED_TRACE(shards);
    auto parallel = parallel_pipeline(shards);
    for (const auto timeout : {util::kMinute, 5 * util::kMinute}) {
      EXPECT_EQ(parallel->request_sessions(timeout),
                serial.request_sessions(timeout));
      EXPECT_EQ(parallel->response_sessions(timeout),
                serial.response_sessions(timeout));
      EXPECT_EQ(parallel->common_sessions(timeout),
                serial.common_sessions(timeout));
    }
  }
}

TEST(ParallelPipelineDifferentialTest, TimeoutSweepMatchesSerial) {
  Pipeline& serial = serial_pipeline();
  std::vector<util::Duration> timeouts;
  for (const int minutes : {1, 2, 5, 10, 30, 60}) {
    timeouts.push_back(minutes * util::kMinute);
  }
  timeouts.push_back(std::numeric_limits<util::Duration>::max());
  const auto expected = serial.session_timeout_sweep(timeouts);
  for (const auto shards : kShardCounts) {
    SCOPED_TRACE(shards);
    EXPECT_EQ(parallel_pipeline(shards)->session_timeout_sweep(timeouts),
              expected);
  }
}

TEST(ParallelPipelineDifferentialTest, AttackAnalysisMatchesSerial) {
  Pipeline& serial = serial_pipeline();
  const auto expected = serial.analyze_attacks();
  ASSERT_FALSE(expected.quic_attacks.empty());
  ASSERT_FALSE(expected.common_attacks.empty());
  for (const auto shards : kShardCounts) {
    SCOPED_TRACE(shards);
    auto parallel = parallel_pipeline(shards);
    const auto analysis = parallel->analyze_attacks();
    EXPECT_EQ(analysis.response_sessions, expected.response_sessions);
    EXPECT_EQ(analysis.common_sessions, expected.common_sessions);
    EXPECT_EQ(analysis.quic_attacks, expected.quic_attacks);
    EXPECT_EQ(analysis.common_attacks, expected.common_attacks);
    // Weighted thresholds (the Figure 10 sweep) must agree as well.
    const auto strict = DosThresholds{}.weighted(0.5);
    EXPECT_EQ(parallel->analyze_attacks(strict).quic_attacks,
              serial.analyze_attacks(strict).quic_attacks);
  }
}

TEST(ParallelPipelineTest, FinishIsIdempotentAndEmptyInputWorks) {
  ParallelPipeline pipeline(scenario().options, 3);
  pipeline.finish();
  pipeline.finish();
  EXPECT_TRUE(pipeline.records().empty());
  EXPECT_EQ(pipeline.stats().total, 0u);
  EXPECT_TRUE(pipeline.request_sessions(util::kMinute).empty());
  const auto analysis = pipeline.analyze_attacks();
  EXPECT_TRUE(analysis.quic_attacks.empty());
  EXPECT_TRUE(analysis.common_attacks.empty());
}

TEST(ParallelPipelineTest, ShardCountDefaultsToHardware) {
  ParallelPipeline pipeline(scenario().options, 0);
  EXPECT_GE(pipeline.shard_count(), 1u);
}

}  // namespace
}  // namespace quicsand::core
