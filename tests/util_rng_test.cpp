#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>

namespace quicsand::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(3);
  // Forking must not advance the parent.
  Rng parent2(7);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(5);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(6)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, kDraws / 6, kDraws / 60) << "value " << v;
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_range(3, 2), std::invalid_argument);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0, sq = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(29);
  std::vector<double> v;
  for (int i = 0; i < 20001; ++i) v.push_back(rng.lognormal_median(255.0, 1.0));
  std::nth_element(v.begin(), v.begin() + 10000, v.end());
  EXPECT_NEAR(v[10000], 255.0, 15.0);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(31);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.poisson(4.2));
  }
  EXPECT_NEAR(sum / kDraws, 4.2, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(37);
  double sum = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.poisson(500.0));
  }
  EXPECT_NEAR(sum / kDraws, 500.0, 5.0);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(41);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], kDraws / 4, kDraws / 40);
  EXPECT_NEAR(counts[2], 3 * kDraws / 4, kDraws / 40);
}

TEST(Rng, WeightedIndexRejectsZeroTotal) {
  Rng rng(43);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), std::invalid_argument);
}

TEST(Rng, FillCoversWholeBuffer) {
  Rng rng(47);
  std::vector<std::uint8_t> buf(33, 0);
  rng.fill(buf);
  int zeros = 0;
  for (auto b : buf) {
    if (b == 0) ++zeros;
  }
  EXPECT_LT(zeros, 5);  // all-zero tail would indicate an unfilled region
}

TEST(Rng, BernoulliProbability) {
  Rng rng(53);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, kDraws / 4, kDraws / 50);
}

TEST(Mix64, IsDeterministicAndSensitive) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
}

}  // namespace
}  // namespace quicsand::util
