// Tests for ICMP error quoting (RFC 792) and AS registry serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "asdb/serialize.hpp"
#include "net/headers.hpp"
#include "util/rng.hpp"

namespace quicsand {
namespace {

using net::Ipv4Address;

TEST(IcmpError, QuotesOriginalDatagram) {
  util::Rng rng(1);
  // Original: spoofed client -> victim UDP/443 probe.
  net::Ipv4Header original_ip;
  original_ip.src = Ipv4Address::from_octets(44, 1, 2, 3);
  original_ip.dst = Ipv4Address::from_octets(142, 250, 0, 1);
  const auto original =
      net::build_udp(original_ip, 54321, 443, rng.bytes(100));

  // Victim answers with port unreachable quoting the probe.
  net::Ipv4Header reply_ip;
  reply_ip.src = original_ip.dst;
  reply_ip.dst = original_ip.src;
  const auto error = net::build_icmp_error(reply_ip, 3, 3, original);
  ASSERT_TRUE(net::verify_checksums(error));

  const auto decoded = net::decode_ipv4(error);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_icmp());
  EXPECT_EQ(decoded->icmp().type, 3);
  EXPECT_EQ(decoded->icmp().code, 3);

  const auto quote = net::parse_icmp_quote(decoded->icmp().payload);
  ASSERT_TRUE(quote.has_value());
  EXPECT_EQ(quote->original_src, original_ip.src);
  EXPECT_EQ(quote->original_dst, original_ip.dst);
  EXPECT_EQ(quote->protocol, net::IpProtocol::kUdp);
  EXPECT_EQ(quote->src_port, 54321);
  EXPECT_EQ(quote->dst_port, 443);
}

TEST(IcmpError, QuoteTruncatedToHeaderPlusEight) {
  util::Rng rng(2);
  net::Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(1, 1, 1, 1);
  ip.dst = Ipv4Address::from_octets(2, 2, 2, 2);
  const auto original = net::build_udp(ip, 1, 2, rng.bytes(1000));
  const auto error = net::build_icmp_error(ip, 3, 1, original);
  const auto decoded = net::decode_ipv4(error);
  ASSERT_TRUE(decoded.has_value());
  // 4 unused + 20 IP + 8 L4 bytes.
  EXPECT_EQ(decoded->icmp().payload.size(), 32u);
}

TEST(IcmpError, ParseRejectsGarbage) {
  util::Rng rng(3);
  EXPECT_FALSE(net::parse_icmp_quote(rng.bytes(3)).has_value());
  std::vector<std::uint8_t> bad(32, 0);
  bad[4] = 0x60;  // quoted version 6
  EXPECT_FALSE(net::parse_icmp_quote(bad).has_value());
}

TEST(RegistrySerialize, RoundTripsSyntheticRegistry) {
  asdb::SyntheticConfig small;
  small.eyeball_ases = 20;
  small.transit_ases = 5;
  small.enterprise_ases = 5;
  small.extra_content_ases = 3;
  const auto original = asdb::AsRegistry::synthetic(small, 11);

  std::stringstream buffer;
  asdb::save_registry(buffer, original);
  asdb::LoadError error;
  const auto loaded = asdb::load_registry(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error.message;

  EXPECT_EQ(loaded->as_count(), original.as_count());
  // Spot-check well-known entries and lookups.
  const auto* google = loaded->find(asdb::AsRegistry::kGoogle);
  ASSERT_NE(google, nullptr);
  EXPECT_EQ(google->name, "GOOGLE");
  EXPECT_EQ(google->type, asdb::NetworkType::kContent);
  EXPECT_EQ(google->country, "US");
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto addr =
        Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    const auto* a = original.lookup(addr);
    const auto* b = loaded->lookup(addr);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(a->asn, b->asn);
      EXPECT_EQ(a->type, b->type);
    }
  }
}

TEST(RegistrySerialize, ParsesHandWrittenFile) {
  std::stringstream input(R"(# comment
as 65000 content US Example CDN Inc
prefix 65000 198.51.100.0/24
prefix 65000 203.0.113.0/24

as 65001 eyeball BD Example ISP   # trailing comment
prefix 65001 192.0.2.0/24
)");
  asdb::LoadError error;
  const auto registry = asdb::load_registry(input, &error);
  ASSERT_TRUE(registry.has_value()) << error.message;
  EXPECT_EQ(registry->as_count(), 2u);
  const auto* cdn = registry->find(65000);
  ASSERT_NE(cdn, nullptr);
  EXPECT_EQ(cdn->name, "Example CDN Inc");
  EXPECT_EQ(registry->prefixes_of(65000).size(), 2u);
  const auto* isp =
      registry->lookup(*Ipv4Address::parse("192.0.2.77"));
  ASSERT_NE(isp, nullptr);
  EXPECT_EQ(isp->asn, 65001u);
  EXPECT_EQ(isp->country, "BD");
}

TEST(RegistrySerialize, ReportsErrors) {
  asdb::LoadError error;

  std::stringstream bad_keyword("route 1 2 3\n");
  EXPECT_FALSE(asdb::load_registry(bad_keyword, &error).has_value());
  EXPECT_EQ(error.line, 1u);

  std::stringstream bad_type("as 1 satellite US X\nprefix 1 1.0.0.0/8\n");
  EXPECT_FALSE(asdb::load_registry(bad_type, &error).has_value());

  std::stringstream orphan_prefix("prefix 9 1.0.0.0/8\n");
  EXPECT_FALSE(asdb::load_registry(orphan_prefix, &error).has_value());

  std::stringstream no_prefixes("as 1 content US X\n");
  EXPECT_FALSE(asdb::load_registry(no_prefixes, &error).has_value());

  std::stringstream bad_cidr("as 1 content US X\nprefix 1 1.0.0.0/40\n");
  EXPECT_FALSE(asdb::load_registry(bad_cidr, &error).has_value());

  std::stringstream duplicate(
      "as 1 content US X\nprefix 1 1.0.0.0/8\nas 1 content US Y\n");
  EXPECT_FALSE(asdb::load_registry(duplicate, &error).has_value());

  EXPECT_FALSE(asdb::load_registry_file("/nonexistent/reg.txt", &error)
                   .has_value());
}

TEST(RegistrySerialize, TypeKeywordsRoundTrip) {
  for (const auto type :
       {asdb::NetworkType::kEyeball, asdb::NetworkType::kContent,
        asdb::NetworkType::kTransit, asdb::NetworkType::kEducation,
        asdb::NetworkType::kEnterprise, asdb::NetworkType::kUnknown}) {
    const auto parsed =
        asdb::parse_network_type(asdb::network_type_keyword(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(asdb::parse_network_type("bogus").has_value());
}

}  // namespace
}  // namespace quicsand
