// Tests for the aggregated report and for pipeline/pcap equivalence:
// consuming a generated stream directly and replaying it through a pcap
// file must produce identical analysis results.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "net/pcap.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand {
namespace {

const asdb::AsRegistry& registry() {
  static const auto reg = asdb::AsRegistry::synthetic({}, 7);
  return reg;
}

const scanner::Deployment& deployment() {
  static const auto dep = scanner::Deployment::synthetic(registry(), {}, 7);
  return dep;
}

telescope::ScenarioConfig small_scenario() {
  auto config = telescope::ScenarioConfig::april2021(1, 99);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  config.tum.passes_per_day = 1.0;
  config.rwth.passes_per_day = 0;
  config.botnet.sessions_per_day = 150;
  config.attacks.quic_attacks_per_day = 25;
  config.attacks.common_attacks_per_day = 40;
  config.misconfig.sessions_per_day = 60;
  return config;
}

core::PipelineOptions pipeline_options(const telescope::ScenarioConfig& c) {
  core::PipelineOptions options;
  options.window_start = c.start;
  options.days = c.days;
  options.research_prefixes.push_back(
      registry().prefixes_of(asdb::AsRegistry::kTumScanner).front());
  return options;
}

TEST(ReportTest, BuildAndPrint) {
  const auto config = small_scenario();
  telescope::TelescopeGenerator generator(config, registry(), deployment());
  core::Pipeline pipeline(pipeline_options(config));
  generator.generate(
      [&](const net::RawPacket& packet) { pipeline.consume(packet); });
  const auto analysis = pipeline.analyze_attacks();
  const auto report =
      core::build_report(pipeline, analysis, registry(), deployment());

  EXPECT_GT(report.total_packets, 0u);
  EXPECT_GT(report.quic_packets, 0u);
  EXPECT_GT(report.research_packets, 0u);
  EXPECT_NEAR(report.request_share + report.response_share, 1.0, 1e-9);
  EXPECT_EQ(report.quic_attacks, analysis.quic_attacks.size());
  EXPECT_EQ(report.common_attacks, analysis.common_attacks.size());
  EXPECT_NEAR(report.concurrent_share + report.sequential_share +
                  report.isolated_share,
              report.quic_attacks == 0 ? 0.0 : 1.0, 1e-9);
  EXPECT_GT(report.victims, 0u);
  EXPECT_GT(report.known_server_share, 0.8);
  EXPECT_FALSE(report.top_victim_ases.empty());
  EXPECT_LE(report.top_victim_ases.size(), 5u);
  // Top list is sorted descending by attack count.
  for (std::size_t i = 1; i < report.top_victim_ases.size(); ++i) {
    EXPECT_GE(report.top_victim_ases[i - 1].second,
              report.top_victim_ases[i].second);
  }

  std::ostringstream os;
  core::print_report(os, report);
  const auto text = os.str();
  EXPECT_NE(text.find("QUICsand analysis report"), std::string::npos);
  EXPECT_NE(text.find("QUIC floods"), std::string::npos);
  EXPECT_NE(text.find("top victim ASes"), std::string::npos);
}

TEST(PcapEquivalence, PcapRoundTripMatchesDirectConsumption) {
  const auto config = small_scenario();
  const auto path =
      (std::filesystem::temp_directory_path() / "quicsand_equiv.pcap")
          .string();

  // Direct path.
  core::Pipeline direct(pipeline_options(config));
  {
    telescope::TelescopeGenerator generator(config, registry(), deployment());
    net::PcapWriter writer(path);
    generator.generate([&](const net::RawPacket& packet) {
      direct.consume(packet);
      writer.write(packet);
    });
  }
  // Through the pcap file.
  core::Pipeline via_pcap(pipeline_options(config));
  {
    net::PcapReader reader(path);
    reader.for_each(
        [&](const net::RawPacket& packet) { via_pcap.consume(packet); });
  }
  std::filesystem::remove(path);

  EXPECT_EQ(direct.stats().total, via_pcap.stats().total);
  EXPECT_EQ(direct.stats().research, via_pcap.stats().research);
  for (std::size_t c = 0; c < core::kTrafficClassCount; ++c) {
    EXPECT_EQ(direct.stats().by_class[c], via_pcap.stats().by_class[c]);
  }
  const auto a = direct.analyze_attacks();
  const auto b = via_pcap.analyze_attacks();
  ASSERT_EQ(a.quic_attacks.size(), b.quic_attacks.size());
  ASSERT_EQ(a.common_attacks.size(), b.common_attacks.size());
  for (std::size_t i = 0; i < a.quic_attacks.size(); ++i) {
    EXPECT_EQ(a.quic_attacks[i].victim, b.quic_attacks[i].victim);
    EXPECT_EQ(a.quic_attacks[i].start, b.quic_attacks[i].start);
    EXPECT_EQ(a.quic_attacks[i].packets, b.quic_attacks[i].packets);
  }
}

TEST(ReportTest, EmptyPipelineProducesEmptyReport) {
  core::PipelineOptions options;
  options.days = 1;
  core::Pipeline pipeline(options);
  const auto analysis = pipeline.analyze_attacks();
  const auto report =
      core::build_report(pipeline, analysis, registry(), deployment());
  EXPECT_EQ(report.total_packets, 0u);
  EXPECT_EQ(report.quic_attacks, 0u);
  EXPECT_EQ(report.victims, 0u);
  std::ostringstream os;
  EXPECT_NO_THROW(core::print_report(os, report));
}

}  // namespace
}  // namespace quicsand
