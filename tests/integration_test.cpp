// End-to-end validation: generate a telescope scenario, run the full
// QUICsand pipeline on the raw packets, and score the detections against
// the generator's ground truth. This is the test the paper could not run
// — we know exactly which attacks are in the trace.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "core/victims.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand {
namespace {

using core::Pipeline;
using core::PipelineOptions;
using telescope::AttackProtocol;
using telescope::ScenarioConfig;
using telescope::TelescopeGenerator;

const asdb::AsRegistry& registry() {
  static const auto reg = asdb::AsRegistry::synthetic({}, 404);
  return reg;
}

const scanner::Deployment& deployment() {
  static const auto dep =
      scanner::Deployment::synthetic(registry(), {}, 404);
  return dep;
}

ScenarioConfig scenario() {
  auto config = ScenarioConfig::april2021(2, 777);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 16};
  config.tum.passes_per_day = 0.5;
  config.rwth.passes_per_day = 0.5;
  config.tum.pass_duration = 8 * util::kHour;
  config.rwth.pass_duration = 8 * util::kHour;
  config.botnet.sessions_per_day = 300;
  config.attacks.quic_attacks_per_day = 40;
  config.attacks.common_attacks_per_day = 80;
  config.misconfig.sessions_per_day = 200;
  return config;
}

PipelineOptions options(const ScenarioConfig& config) {
  PipelineOptions opts;
  opts.window_start = config.start;
  opts.days = config.days;
  opts.research_prefixes.push_back(
      registry().prefixes_of(config.tum.asn).front());
  opts.research_prefixes.push_back(
      registry().prefixes_of(config.rwth.asn).front());
  return opts;
}

/// Shared fixture: the scenario is generated and analyzed once.
class IntegrationTest : public ::testing::Test {
 protected:
  struct State {
    ScenarioConfig config = scenario();
    telescope::GroundTruth truth;
    std::unique_ptr<Pipeline> pipeline;
    Pipeline::AttackAnalysis analysis;
  };

  static State& state() {
    static State s = [] {
      State st;
      TelescopeGenerator generator(st.config, registry(), deployment());
      st.pipeline = std::make_unique<Pipeline>(options(st.config));
      generator.generate(
          [&](const net::RawPacket& packet) { st.pipeline->consume(packet); });
      st.truth = generator.ground_truth();
      st.analysis = st.pipeline->analyze_attacks();
      return st;
    }();
    return s;
  }
};

TEST_F(IntegrationTest, ResearchScannersDominateQuicTraffic) {
  const auto& stats = state().pipeline->stats();
  const auto quic_total = stats.of(core::TrafficClass::kQuicRequest) +
                          stats.of(core::TrafficClass::kQuicResponse);
  ASSERT_GT(quic_total, 0u);
  const double research_share =
      static_cast<double>(stats.research) / static_cast<double>(quic_total);
  // Fig. 2: the research bias is extreme (98.5% at a /9 telescope). The
  // test telescope is a /16, which shrinks the research probe count by
  // 128x while the event traffic stays fixed, so the share drops — it
  // must still be the clear majority.
  EXPECT_GT(research_share, 0.60);
  EXPECT_EQ(stats.undecodable, 0u);
}

TEST_F(IntegrationTest, SanitizedSplitIsMostlyResponses) {
  const auto& stats = state().pipeline->stats();
  const auto requests = stats.sanitized_requests();
  const auto responses = stats.sanitized_responses();
  // After research removal all requests left are botnet scans; responses
  // (backscatter + misconfig) dominate, as in §5.1 (15% / 85%).
  const double response_share =
      static_cast<double>(responses) /
      static_cast<double>(stats.sanitized_quic());
  EXPECT_GT(response_share, 0.6);
  EXPECT_GT(requests, 0u);
}

TEST_F(IntegrationTest, TimeoutSweepIsMonotoneWithKnee) {
  std::vector<util::Duration> timeouts;
  for (int m = 1; m <= 60; m *= 2) timeouts.push_back(m * util::kMinute);
  const auto sweep = state().pipeline->session_timeout_sweep(timeouts);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].second, sweep[i - 1].second);
  }
  // The curve flattens: the drop from 1->2 min exceeds the 32->64 drop.
  const auto d_head = sweep[0].second - sweep[1].second;
  const auto d_tail = sweep[sweep.size() - 2].second - sweep.back().second;
  EXPECT_GE(d_head, d_tail);
}

TEST_F(IntegrationTest, DetectorRecallOnPlannedQuicAttacks) {
  const auto& analysis = state().analysis;
  // Ground truth: planned QUIC attacks that should be detectable
  // (generous enough to pass the Moore thresholds).
  std::uint64_t detectable = 0, recovered = 0;
  for (const auto* attack : state().truth.quic_attacks()) {
    const bool strong = attack->peak_pps > 1.0 &&
                        attack->duration > 3 * util::kMinute;
    if (!strong) continue;
    ++detectable;
    for (const auto& detected : analysis.quic_attacks) {
      if (detected.victim == attack->victim &&
          detected.start < attack->start + attack->duration &&
          detected.end > attack->start) {
        ++recovered;
        break;
      }
    }
  }
  ASSERT_GT(detectable, 5u);
  EXPECT_GT(static_cast<double>(recovered) /
                static_cast<double>(detectable),
            0.9);
}

TEST_F(IntegrationTest, DetectorPrecisionAgainstGroundTruth) {
  const auto& analysis = state().analysis;
  // Every detected QUIC attack should trace back to a planned attack on
  // the same victim (misconfig noise must not trigger detections).
  std::unordered_set<std::uint32_t> planned_victims;
  for (const auto* attack : state().truth.quic_attacks()) {
    planned_victims.insert(attack->victim.value());
  }
  ASSERT_FALSE(analysis.quic_attacks.empty());
  std::uint64_t matched = 0;
  for (const auto& detected : analysis.quic_attacks) {
    if (planned_victims.contains(detected.victim.value())) ++matched;
  }
  EXPECT_EQ(matched, analysis.quic_attacks.size());
}

TEST_F(IntegrationTest, CommonAttacksDetectedToo) {
  EXPECT_GT(state().analysis.common_attacks.size(), 30u);
  // QUIC floods are shorter than TCP/ICMP floods (Fig. 7).
  std::vector<double> quic_durations, common_durations;
  for (const auto& a : state().analysis.quic_attacks) {
    quic_durations.push_back(util::to_seconds(a.duration()));
  }
  for (const auto& a : state().analysis.common_attacks) {
    common_durations.push_back(util::to_seconds(a.duration()));
  }
  ASSERT_FALSE(quic_durations.empty());
  ASSERT_FALSE(common_durations.empty());
  EXPECT_LT(util::median_of(quic_durations),
            util::median_of(common_durations));
}

TEST_F(IntegrationTest, MultiVectorSharesRoughlyMatchPlan) {
  const auto& analysis = state().analysis;
  const auto report = core::correlate_attacks(analysis.quic_attacks,
                                              analysis.common_attacks);
  ASSERT_GT(report.total(), 20u);
  // Half-ish concurrent (paper: 51%), sizable sequential, small isolated.
  EXPECT_GT(report.share(core::Relation::kConcurrent), 0.30);
  EXPECT_GT(report.share(core::Relation::kSequential), 0.15);
  EXPECT_LT(report.share(core::Relation::kIsolated), 0.35);
}

TEST_F(IntegrationTest, VictimsAreKnownQuicServers) {
  const auto report = core::analyze_victims(state().analysis.quic_attacks,
                                            registry(), deployment());
  ASSERT_GT(report.total_attacks, 20u);
  // Paper: 98% of attacks target known QUIC servers.
  EXPECT_GT(report.known_server_share(), 0.9);
  // Google + Facebook take the bulk of attacks (83% in the paper).
  const auto google = report.attacks_by_asn.count(asdb::AsRegistry::kGoogle)
                          ? report.attacks_by_asn.at(asdb::AsRegistry::kGoogle)
                          : 0;
  const auto facebook =
      report.attacks_by_asn.count(asdb::AsRegistry::kFacebook)
          ? report.attacks_by_asn.at(asdb::AsRegistry::kFacebook)
          : 0;
  EXPECT_GT(static_cast<double>(google + facebook) /
                static_cast<double>(report.total_attacks),
            0.6);
}

TEST_F(IntegrationTest, BackscatterCompositionMatchesSection6) {
  // §6: suspect events average ~31% Initial / ~57% Handshake messages.
  std::uint64_t initial = 0, handshake = 0, total = 0;
  for (const auto& attack : state().analysis.quic_attacks) {
    const auto& session =
        state().analysis.response_sessions[attack.session_index];
    initial += session.kind_counts[static_cast<std::size_t>(
        quic::QuicPacketKind::kInitial)];
    handshake += session.kind_counts[static_cast<std::size_t>(
        quic::QuicPacketKind::kHandshake)];
    for (const auto count : session.kind_counts) total += count;
  }
  ASSERT_GT(total, 1000u);
  const double initial_share = static_cast<double>(initial) / total;
  const double handshake_share = static_cast<double>(handshake) / total;
  EXPECT_NEAR(initial_share, 0.31, 0.10);
  EXPECT_NEAR(handshake_share, 0.57, 0.12);
}

TEST_F(IntegrationTest, NoRetryMessagesInBackscatter) {
  // §6: the telescope sees no RETRY packets at all.
  std::uint64_t retries = 0;
  for (const auto& record : state().pipeline->records()) {
    retries += record.kind_counts[static_cast<std::size_t>(
        quic::QuicPacketKind::kRetry)];
  }
  EXPECT_EQ(retries, 0u);
}

TEST_F(IntegrationTest, ProviderProfilesShowScidBehaviour) {
  const asdb::Asn providers[] = {asdb::AsRegistry::kGoogle,
                                 asdb::AsRegistry::kFacebook};
  const auto profiles = core::profile_providers(
      state().analysis.quic_attacks, state().analysis.response_sessions,
      registry(), providers);
  ASSERT_EQ(profiles.size(), 2u);
  const auto& google = profiles[0];
  const auto& facebook = profiles[1];
  ASSERT_GT(google.attacks, 5u);
  ASSERT_GT(facebook.attacks, 3u);
  // Port randomization drives SCIDs: each attack shows many more
  // distinct ports/SCIDs than distinct client IPs.
  EXPECT_GT(google.scids_per_attack.mean(),
            google.client_ips_per_attack.mean());
  EXPECT_GT(facebook.client_ports_per_attack.mean(),
            facebook.client_ips_per_attack.mean());
  // Version mixes: Facebook backscatter is dominated by mvfst-draft-27,
  // Google by draft-29 (Fig. 9).
  EXPECT_GT(facebook.version_share(0xfaceb002), 0.7);
  EXPECT_GT(google.version_share(0xff00001d), 0.4);
}

TEST_F(IntegrationTest, GreyNoiseCorrelationFindsNoBenignRequesters) {
  // Rebuild the generator to fetch its intel db (deterministic seed).
  TelescopeGenerator generator(state().config, registry(), deployment());
  const auto db = generator.make_intel_db();
  const auto sessions = state().pipeline->request_sessions(
      5 * util::kMinute);
  std::vector<net::Ipv4Address> sources;
  sources.reserve(sessions.size());
  for (const auto& session : sessions) sources.push_back(session.source);
  const auto summary = db.summarize(sources);
  EXPECT_EQ(summary.benign, 0u);  // research scanners were removed
  EXPECT_GT(summary.malicious, 0u);
  EXPECT_NEAR(summary.malicious_share(), 0.023, 0.025);
}

}  // namespace
}  // namespace quicsand
