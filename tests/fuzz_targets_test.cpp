// Tier-1 smoke for the fuzz targets: every builtin seed parses clean,
// and a short deterministic mutation run per target stays clean. The
// full 10k-iteration runs live under the `fuzz` ctest label and the
// asan/ubsan presets; this test keeps the machinery itself gated.
#include "fuzz/targets.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "quic/connection_id.hpp"
#include "util/rng.hpp"

namespace quicsand::fuzz {
namespace {

TEST(FuzzTargets, RegistryIsSortedAndUnique) {
  const auto targets = all_targets();
  ASSERT_FALSE(targets.empty());
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_FALSE(targets[i].name.empty());
    EXPECT_FALSE(targets[i].description.empty());
    EXPECT_NE(targets[i].fn, nullptr);
    names.insert(targets[i].name);
    if (i > 0) {
      EXPECT_LT(targets[i - 1].name, targets[i].name);
    }
  }
  EXPECT_EQ(names.size(), targets.size());
}

TEST(FuzzTargets, FindAndRunByName) {
  for (const auto& target : all_targets()) {
    EXPECT_EQ(find_target(target.name), &target);
  }
  EXPECT_EQ(find_target("no_such_target"), nullptr);
  EXPECT_THROW(run_target("no_such_target", {}), std::invalid_argument);
}

TEST(FuzzTargets, EveryTargetHasBuiltinSeeds) {
  for (const auto& target : all_targets()) {
    EXPECT_FALSE(builtin_seeds(target.name).empty()) << target.name;
  }
  EXPECT_TRUE(builtin_seeds("no_such_target").empty());
}

TEST(FuzzTargets, BuiltinSeedsParseClean) {
  for (const auto& target : all_targets()) {
    for (const auto& seed : builtin_seeds(target.name)) {
      SCOPED_TRACE(std::string(target.name) + " " + seed.name);
      target.fn(seed.data);
    }
  }
}

TEST(FuzzTargets, TargetsSurviveDegenerateInputs) {
  const std::vector<std::uint8_t> zeros(2048, 0x00);
  const std::vector<std::uint8_t> ones(2048, 0xff);
  for (const auto& target : all_targets()) {
    SCOPED_TRACE(target.name);
    target.fn({});
    target.fn(std::span<const std::uint8_t>(zeros).first(1));
    target.fn(zeros);
    target.fn(ones);
  }
}

// Found by fuzz_quic_transport_params under -fsanitize=undefined: a
// zero-length connection ID parsed from an empty span passed nullptr to
// memcpy (UB even for size 0).
TEST(FuzzRegressions, ZeroLengthConnectionIdFromNullSpan) {
  const quic::ConnectionId id{std::span<const std::uint8_t>{}};
  EXPECT_TRUE(id.empty());
  EXPECT_EQ(id, quic::ConnectionId{});
}

TEST(FuzzTargets, ShortDeterministicMutationRunStaysClean) {
  constexpr std::uint64_t kIterations = 300;
  for (const auto& target : all_targets()) {
    SCOPED_TRACE(target.name);
    const auto corpus = builtin_seeds(target.name);
    ASSERT_FALSE(corpus.empty());
    for (std::uint64_t i = 0; i < kIterations; ++i) {
      // Mirrors driver_main: a fresh (rng, input) pair per iteration.
      util::Rng rng(util::mix64(1, i));
      Mutator mutator(rng.fork(1), {.max_size = 4096, .max_stacked = 5});
      auto data = corpus[rng.uniform(corpus.size())].data;
      mutator.mutate(data);
      target.fn(data);
    }
  }
}

}  // namespace
}  // namespace quicsand::fuzz
