// Property tests for the packet codecs, the prefix trie (against a
// linear-scan reference) and the scan-pass permutation.
#include <gtest/gtest.h>

#include <map>

#include "asdb/prefix_trie.hpp"
#include "net/headers.hpp"
#include "scanner/zmap.hpp"
#include "util/rng.hpp"

namespace quicsand {
namespace {

TEST(NetProperty, UdpBuildDecodeVerifySweep) {
  util::Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    net::Ipv4Header ip;
    ip.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    ip.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    ip.ttl = static_cast<std::uint8_t>(1 + rng.uniform(255));
    ip.identification = static_cast<std::uint16_t>(rng.next());
    const auto sport = static_cast<std::uint16_t>(rng.uniform(65536));
    const auto dport = static_cast<std::uint16_t>(rng.uniform(65536));
    const auto payload = rng.bytes(rng.uniform(1400));
    const auto packet = net::build_udp(ip, sport, dport, payload);
    ASSERT_TRUE(net::verify_checksums(packet));
    const auto decoded = net::decode_ipv4(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ip.src, ip.src);
    EXPECT_EQ(decoded->ip.dst, ip.dst);
    EXPECT_EQ(decoded->udp().src_port, sport);
    EXPECT_EQ(decoded->udp().dst_port, dport);
    EXPECT_EQ(decoded->udp().payload.size(), payload.size());
  }
}

TEST(NetProperty, TcpBuildDecodeVerifySweep) {
  util::Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    net::Ipv4Header ip;
    ip.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    ip.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    net::TcpInfo tcp;
    tcp.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
    tcp.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
    tcp.seq = static_cast<std::uint32_t>(rng.next());
    tcp.ack = static_cast<std::uint32_t>(rng.next());
    tcp.flags = static_cast<std::uint8_t>(rng.uniform(64));
    const auto body = rng.bytes(rng.uniform(200));
    tcp.payload = body;
    const auto packet = net::build_tcp(ip, tcp);
    ASSERT_TRUE(net::verify_checksums(packet));
    const auto decoded = net::decode_ipv4(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->tcp().seq, tcp.seq);
    EXPECT_EQ(decoded->tcp().flags, tcp.flags);
  }
}

TEST(NetProperty, PayloadBitFlipBreaksChecksum) {
  util::Rng rng(3);
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(1, 2, 3, 4);
  ip.dst = net::Ipv4Address::from_octets(5, 6, 7, 8);
  const auto payload = rng.bytes(300);
  const auto packet = net::build_udp(ip, 1000, 2000, payload);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = packet;
    // Flip a single bit anywhere in the datagram.
    const auto bit = rng.uniform(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(net::verify_checksums(mutated)) << "bit " << bit;
  }
}

TEST(NetProperty, DecodeFuzzNeverThrows) {
  util::Rng rng(4);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto junk = rng.bytes(rng.uniform(120));
    ASSERT_NO_THROW((void)net::decode_ipv4(junk));
    ASSERT_NO_THROW((void)net::verify_checksums(junk));
  }
}

TEST(TrieProperty, MatchesLinearReferenceOnRandomTables) {
  util::Rng rng(5);
  for (int table = 0; table < 10; ++table) {
    asdb::PrefixTrie<int> trie;
    std::vector<std::pair<net::Ipv4Prefix, int>> reference;
    for (int i = 0; i < 120; ++i) {
      const auto base =
          net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
      const int length = static_cast<int>(rng.uniform_range(4, 28));
      const net::Ipv4Prefix prefix(base, length);
      trie.insert(prefix, i);
      // A later announcement of the same prefix overwrites: mimic that
      // in the reference.
      bool replaced = false;
      for (auto& [p, v] : reference) {
        if (p == prefix) {
          v = i;
          replaced = true;
          break;
        }
      }
      if (!replaced) reference.emplace_back(prefix, i);
    }
    for (int probe = 0; probe < 500; ++probe) {
      const auto addr =
          net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
      // Linear longest-prefix match.
      int best_value = -1;
      int best_length = -1;
      for (const auto& [prefix, value] : reference) {
        if (prefix.contains(addr) && prefix.length() > best_length) {
          best_length = prefix.length();
          best_value = value;
        }
      }
      const auto got = trie.lookup(addr);
      if (best_length < 0) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, best_value);
      }
    }
  }
}

class ScanPermutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanPermutationTest, BijectiveOverTelescope) {
  scanner::ScanPassConfig config;
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0),
                      GetParam()};
  config.duration = util::kHour;
  config.seed = static_cast<std::uint64_t>(GetParam());
  scanner::ScanPass pass(config);
  std::vector<bool> seen(config.telescope.size(), false);
  std::uint64_t count = 0;
  while (auto probe = pass.next()) {
    const auto index = probe->target.value() -
                       config.telescope.base().value();
    ASSERT_LT(index, seen.size());
    EXPECT_FALSE(seen[index]) << "duplicate probe";
    seen[index] = true;
    ++count;
  }
  EXPECT_EQ(count, config.telescope.size());
}

INSTANTIATE_TEST_SUITE_P(PrefixLengths, ScanPermutationTest,
                         ::testing::Values(32, 30, 27, 24, 21, 18));

}  // namespace
}  // namespace quicsand
