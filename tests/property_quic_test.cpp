// Property and fuzz tests for the QUIC codec layer: seal/open across all
// version generations and packet-number lengths, exhaustive varint
// sweeps, and dissector robustness on random and mutated inputs.
#include <gtest/gtest.h>

#include "quic/dissector.hpp"
#include "quic/initial_aead.hpp"
#include "quic/packets.hpp"
#include "quic/retry.hpp"
#include "quic/varint.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

struct SealParam {
  std::uint32_t version;
  int pn_length;
  PacketType type;
};

class SealOpenMatrixTest : public ::testing::TestWithParam<SealParam> {};

TEST_P(SealOpenMatrixTest, RoundTrips) {
  const auto& param = GetParam();
  util::Rng rng(util::mix64(param.version, param.pn_length));
  const auto ctx = HandshakeContext::random(param.version, rng);
  const auto keys =
      param.type == PacketType::kInitial
          ? derive_initial_keys(param.version, ctx.client_dcid,
                                Perspective::kClient)
          : derive_handshake_keys_simulated(param.version, ctx.client_dcid,
                                            Perspective::kServer);
  LongHeader hdr;
  hdr.type = param.type;
  hdr.version = param.version;
  hdr.dcid = ctx.client_dcid;
  hdr.scid = ctx.client_scid;
  hdr.packet_number = rng.uniform(1ULL << (8 * param.pn_length - 1));
  hdr.packet_number_length = param.pn_length;
  const auto payload = rng.bytes(50 + rng.uniform(400));
  const auto packet = seal_long_header_packet(keys, hdr, payload);
  const auto view = parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->version, param.version);
  const auto opened = open_long_header_packet(keys, packet, *view);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->packet_number, hdr.packet_number);
  EXPECT_EQ(opened->payload, payload);
}

std::vector<SealParam> seal_matrix() {
  std::vector<SealParam> params;
  for (const std::uint32_t version :
       {0x00000001u, 0xff00001du, 0xff00001bu, 0xfaceb002u}) {
    for (int pn = 1; pn <= 4; ++pn) {
      params.push_back({version, pn, PacketType::kInitial});
      params.push_back({version, pn, PacketType::kHandshake});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, SealOpenMatrixTest, ::testing::ValuesIn(seal_matrix()),
    [](const auto& info) {
      std::string name = version_name(info.param.version) + "_pn" +
                         std::to_string(info.param.pn_length) + "_" +
                         packet_type_name(info.param.type);
      // gtest parameter names must be alphanumeric.
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(VarintProperty, ExhaustiveTwoByteRange) {
  for (std::uint64_t v = 0; v < (1u << 14); ++v) {
    util::ByteWriter w;
    write_varint(w, v);
    util::ByteReader r(w.view());
    ASSERT_EQ(read_varint(r), v) << v;
    ASSERT_TRUE(r.empty());
  }
}

TEST(VarintProperty, RandomNonMinimalEncodingsDecode) {
  util::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t v = rng.next() & kVarintMax;
    const std::size_t minimal = varint_size(v);
    for (std::size_t size : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
      if (size < minimal) continue;
      util::ByteWriter w;
      write_varint_with_size(w, v, size);
      ASSERT_EQ(w.size(), size);
      util::ByteReader r(w.view());
      ASSERT_EQ(read_varint(r), v);
    }
  }
}

TEST(DissectorFuzz, RandomBytesNeverThrow) {
  util::Rng rng(11);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto payload = rng.bytes(rng.uniform(1500));
    DissectResult result;
    ASSERT_NO_THROW(result = dissect_udp_payload(payload));
    // Whatever the verdict, it must be internally consistent.
    if (result.is_quic) {
      ASSERT_FALSE(result.packets.empty());
      std::size_t total = 0;
      for (const auto& pkt : result.packets) total += pkt.size;
      EXPECT_LE(total, payload.size());
    } else {
      EXPECT_FALSE(result.reject_reason.empty());
    }
  }
}

TEST(DissectorFuzz, MutatedValidPacketsNeverThrow) {
  util::Rng rng(13);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto base =
      build_client_initial(ctx, "fuzz.example", rng, CryptoFidelity::kFast);
  DissectOptions deep;
  deep.decrypt_initials = true;
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = base;
    const int flips = 1 + static_cast<int>(rng.uniform(8));
    for (int f = 0; f < flips; ++f) {
      const auto bit = rng.uniform(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    ASSERT_NO_THROW((void)dissect_udp_payload(mutated, deep));
  }
}

TEST(DissectorFuzz, TruncationSweepNeverThrows) {
  util::Rng rng(17);
  const auto ctx = HandshakeContext::random(0xff00001d, rng);
  auto datagram = build_server_initial_handshake(ctx, rng,
                                                 CryptoFidelity::kFast);
  for (std::size_t len = 0; len <= datagram.size(); ++len) {
    const std::span<const std::uint8_t> prefix(datagram.data(), len);
    ASSERT_NO_THROW((void)dissect_udp_payload(prefix));
  }
}

TEST(RetryFuzz, RandomTokensNeverValidate) {
  util::Rng rng(19);
  RetryTokenMinter minter(rng.bytes(32));
  const auto client = net::Ipv4Address::from_octets(198, 51, 100, 1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto junk = rng.bytes(rng.uniform(80));
    EXPECT_FALSE(
        minter.validate(junk, client, 443, util::kApril2021Start)
            .has_value());
  }
}

TEST(RetryFuzz, MutatedRetryPacketsFailIntegrity) {
  util::Rng rng(23);
  const auto odcid = ConnectionId(rng.bytes(8));
  const auto packet =
      build_retry_packet(1, ConnectionId(rng.bytes(8)),
                         ConnectionId(rng.bytes(8)), rng.bytes(24), odcid);
  ASSERT_TRUE(verify_retry_integrity(1, packet, odcid));
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = packet;
    const auto bit = rng.uniform(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(verify_retry_integrity(1, mutated, odcid));
  }
}

class PaddingTargetTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaddingTargetTest, ClientInitialHitsExactTarget) {
  util::Rng rng(29);
  for (const auto fidelity :
       {CryptoFidelity::kFull, CryptoFidelity::kFast}) {
    const auto ctx = HandshakeContext::random(1, rng);
    const auto datagram = build_client_initial(ctx, "pad.example", rng,
                                               fidelity, {}, GetParam());
    EXPECT_EQ(datagram.size(), GetParam());
    const auto result = dissect_udp_payload(datagram);
    ASSERT_TRUE(result.is_quic);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PaddingTargetTest,
                         ::testing::Values(1200, 1252, 1350, 1500));

TEST(CoalescingProperty, UpToThreePacketsDissect) {
  util::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto ctx = HandshakeContext::random(1, rng);
    auto datagram =
        build_server_initial_handshake(ctx, rng, CryptoFidelity::kFast);
    const auto extra = build_server_handshake_ping(ctx, rng,
                                                   CryptoFidelity::kFast);
    datagram.insert(datagram.end(), extra.begin(), extra.end());
    const auto result = dissect_udp_payload(datagram);
    ASSERT_TRUE(result.is_quic) << result.reject_reason;
    ASSERT_EQ(result.packets.size(), 3u);
    std::size_t total = 0;
    for (const auto& pkt : result.packets) total += pkt.size;
    EXPECT_EQ(total, datagram.size());
  }
}

}  // namespace
}  // namespace quicsand::quic
