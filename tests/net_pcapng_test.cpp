#include "net/pcapng.hpp"

#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "net/headers.hpp"

namespace quicsand::net {
namespace {

/// Minimal pcapng writer for tests (the library itself only reads).
class TestPcapngWriter {
 public:
  explicit TestPcapngWriter(bool big_endian = false)
      : big_endian_(big_endian) {}

  void section_header() {
    std::vector<std::uint8_t> body;
    put_u32(body, kPcapngByteOrderMagic);
    put_u16(body, 1);  // major
    put_u16(body, 0);  // minor
    for (int i = 0; i < 8; ++i) body.push_back(0xff);  // section length -1
    block(kPcapngSectionHeader, body);
  }

  void interface_description(std::uint16_t linktype,
                             std::optional<std::uint8_t> tsresol = {}) {
    std::vector<std::uint8_t> body;
    put_u16(body, linktype);
    put_u16(body, 0);  // reserved
    put_u32(body, 65535);  // snaplen
    if (tsresol) {
      put_u16(body, 9);  // if_tsresol
      put_u16(body, 1);
      body.push_back(*tsresol);
      body.push_back(0);  // padding to 4
      body.push_back(0);
      body.push_back(0);
      put_u16(body, 0);  // opt_endofopt
      put_u16(body, 0);
    }
    block(kPcapngInterfaceDescription, body);
  }

  void enhanced_packet(std::uint32_t interface_id, std::uint64_t ticks,
                       std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> body;
    put_u32(body, interface_id);
    put_u32(body, static_cast<std::uint32_t>(ticks >> 32));
    put_u32(body, static_cast<std::uint32_t>(ticks));
    put_u32(body, static_cast<std::uint32_t>(data.size()));
    put_u32(body, static_cast<std::uint32_t>(data.size()));
    body.insert(body.end(), data.begin(), data.end());
    while (body.size() % 4 != 0) body.push_back(0);
    block(kPcapngEnhancedPacket, body);
  }

  void unknown_block() { block(0x0bad, {0x01, 0x02, 0x03, 0x04}); }

  void save(const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
  }

 private:
  void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    if (big_endian_) {
      out.push_back(static_cast<std::uint8_t>(v >> 8));
      out.push_back(static_cast<std::uint8_t>(v));
    } else {
      out.push_back(static_cast<std::uint8_t>(v));
      out.push_back(static_cast<std::uint8_t>(v >> 8));
    }
  }
  void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    if (big_endian_) {
      for (int i = 3; i >= 0; --i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    }
  }
  void block(std::uint32_t type, std::vector<std::uint8_t> body) {
    const std::uint32_t total =
        static_cast<std::uint32_t>(12 + body.size());
    put_u32(bytes_, type);
    put_u32(bytes_, total);
    bytes_.insert(bytes_.end(), body.begin(), body.end());
    put_u32(bytes_, total);
  }

  bool big_endian_;
  std::vector<std::uint8_t> bytes_;
};

std::vector<std::uint8_t> sample_ip_packet(std::uint16_t sport) {
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(192, 0, 2, 1);
  ip.dst = Ipv4Address::from_octets(44, 0, 0, 9);
  return build_udp(ip, sport, 443, std::vector<std::uint8_t>{1, 2, 3});
}

class PcapngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("quicsand_pcapng_") +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".pcapng"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(PcapngTest, ReadsRawPackets) {
  TestPcapngWriter writer;
  writer.section_header();
  writer.interface_description(kLinktypeRaw);
  const auto packet = sample_ip_packet(1000);
  writer.enhanced_packet(0, 1617235200000000ULL, packet);  // µs default
  writer.enhanced_packet(0, 1617235200123456ULL, packet);
  writer.save(path_);

  PcapngReader reader(path_);
  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->timestamp, util::Timestamp{1617235200000000LL});
  EXPECT_EQ(first->data, packet);
  auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->timestamp, util::Timestamp{1617235200123456LL});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.interface_count(), 1u);
}

TEST_F(PcapngTest, StripsEthernetAndSkipsUnknownBlocks) {
  TestPcapngWriter writer;
  writer.section_header();
  writer.interface_description(kLinktypeEthernet);
  writer.unknown_block();
  const auto ip_packet = sample_ip_packet(2000);
  std::vector<std::uint8_t> frame(14 + ip_packet.size(), 0xee);
  frame[12] = 0x08;
  frame[13] = 0x00;
  std::copy(ip_packet.begin(), ip_packet.end(), frame.begin() + 14);
  writer.enhanced_packet(0, 42, frame);
  writer.save(path_);

  PcapngReader reader(path_);
  auto packet = reader.next();
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->data, ip_packet);
}

TEST_F(PcapngTest, HonoursNanosecondTsresol) {
  TestPcapngWriter writer;
  writer.section_header();
  writer.interface_description(kLinktypeRaw, std::uint8_t{9});  // 10^-9
  const auto packet = sample_ip_packet(3000);
  writer.enhanced_packet(0, 5000000000ULL, packet);  // 5 s in ns
  writer.save(path_);

  PcapngReader reader(path_);
  auto read = reader.next();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->timestamp, util::Timestamp{5000000LL});  // 5 s in µs
}

TEST_F(PcapngTest, BigEndianSections) {
  TestPcapngWriter writer(/*big_endian=*/true);
  writer.section_header();
  writer.interface_description(kLinktypeRaw);
  const auto packet = sample_ip_packet(4000);
  writer.enhanced_packet(0, 77, packet);
  writer.save(path_);

  PcapngReader reader(path_);
  auto read = reader.next();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data, packet);
  EXPECT_EQ(read->timestamp, util::Timestamp{77});
}

TEST_F(PcapngTest, ForEachCounts) {
  TestPcapngWriter writer;
  writer.section_header();
  writer.interface_description(kLinktypeRaw);
  for (int i = 0; i < 7; ++i) {
    writer.enhanced_packet(0, static_cast<std::uint64_t>(i),
                           sample_ip_packet(static_cast<std::uint16_t>(i)));
  }
  writer.save(path_);
  PcapngReader reader(path_);
  std::uint64_t seen = 0;
  EXPECT_EQ(reader.for_each([&](const RawPacket&) { ++seen; }), 7u);
  EXPECT_EQ(seen, 7u);
}

TEST_F(PcapngTest, RejectsGarbage) {
  {
    std::ofstream out(path_, std::ios::binary);
    const char junk[32] = {0x42};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(PcapngReader reader(path_), std::runtime_error);
  EXPECT_THROW(PcapngReader reader("/nonexistent.pcapng"),
               std::runtime_error);
}

TEST_F(PcapngTest, RejectsPacketForUnknownInterface) {
  TestPcapngWriter writer;
  writer.section_header();
  // No interface description at all.
  writer.enhanced_packet(3, 0, sample_ip_packet(1));
  writer.save(path_);
  PcapngReader reader(path_);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST_F(PcapngTest, ReadsFromCallerOwnedStream) {
  TestPcapngWriter writer;
  writer.section_header();
  writer.interface_description(kLinktypeRaw);
  const auto packet = sample_ip_packet(1234);
  writer.enhanced_packet(0, 42, packet);
  writer.save(path_);
  std::ifstream file(path_, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::istringstream in(buffer.str());
  PcapngReader reader(in);
  auto read = reader.next();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data, packet);
}

// The next three are fuzzer-found regressions (see tests/corpus/pcapng).

TEST_F(PcapngTest, RejectsCaplenOverflowingBoundsCheck) {
  // An EPB claiming caplen 0xffffffff used to wrap the 32-bit
  // `20 + caplen` bounds check and read out of bounds.
  TestPcapngWriter writer;
  writer.section_header();
  writer.interface_description(kLinktypeRaw);
  writer.enhanced_packet(0, 0, sample_ip_packet(1));
  writer.save(path_);
  std::ifstream file(path_, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string bytes = buffer.str();
  // Locate the last block (the EPB) via its trailing total-length copy,
  // then patch its caplen field: block header (8) + id (4) + ts (8).
  std::uint32_t total = 0;
  // lint:allow(raw-memcpy): fixed 4-byte read of the trailing length copy
  std::memcpy(&total, bytes.data() + bytes.size() - 4, 4);
  ASSERT_LT(total, bytes.size());
  const std::size_t caplen_offset = bytes.size() - total + 8 + 4 + 8;
  for (int i = 0; i < 4; ++i) bytes[caplen_offset + i] = '\xff';
  std::istringstream in(bytes);
  PcapngReader reader(in);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST_F(PcapngTest, RejectsOverflowingTimestampResolution) {
  for (const std::uint8_t tsresol : {std::uint8_t{20},    // 10^20
                                     std::uint8_t{0xc0},  // 2^64
                                     std::uint8_t{0xff}}) {
    TestPcapngWriter writer;
    writer.section_header();
    writer.interface_description(kLinktypeRaw, tsresol);
    writer.enhanced_packet(0, 1, sample_ip_packet(1));
    writer.save(path_);
    PcapngReader reader(path_);
    EXPECT_THROW((void)reader.next(), std::runtime_error)
        << "tsresol " << int(tsresol);
  }
}

TEST_F(PcapngTest, RejectsTimestampBeyondMicrosecondRange) {
  TestPcapngWriter writer;
  writer.section_header();
  // 1 tick per second: ~2^64 ticks exceeds int64 microseconds.
  writer.interface_description(kLinktypeRaw, std::uint8_t{0x80});
  writer.enhanced_packet(0, 0xffffffffffffffffULL, sample_ip_packet(1));
  writer.save(path_);
  PcapngReader reader(path_);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

}  // namespace
}  // namespace quicsand::net
