// Online detector: early alerts, equivalence with the batch detector,
// and bounded memory under source churn.
#include <gtest/gtest.h>

#include <set>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand::core {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

PacketRecord response_record(util::Timestamp t, std::uint32_t src) {
  PacketRecord record;
  record.timestamp = t;
  record.src = net::Ipv4Address(src);
  record.dst = net::Ipv4Address(0x2c000001);
  record.src_port = 443;
  record.dst_port = 40000;
  record.wire_size = 1200;
  record.cls = TrafficClass::kQuicResponse;
  record.quic_version = 1;
  return record;
}

TEST(OnlineDetector, AlertsBeforeSessionEnds) {
  OnlineDetector detector({});
  std::vector<DetectedAttack> alerts, attacks;
  detector.set_on_alert([&](const DetectedAttack& a) { alerts.push_back(a); });
  detector.set_on_attack(
      [&](const DetectedAttack& a) { attacks.push_back(a); });

  // 2 pps for 10 minutes: crosses every threshold around the 1-minute
  // mark (26 packets, >60 s); keeps going long after.
  for (int i = 0; i < 1200; ++i) {
    detector.consume(
        response_record(kT0 + i * util::kSecond / 2, 0xaaaa0001));
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(detector.alerts_fired(), 1u);
  // Alert fired early, not at the end of the 10-minute session.
  EXPECT_LT(util::to_seconds(alerts[0].end - alerts[0].start), 120.0);
  EXPECT_GT(detector.mean_alert_latency_s(), 60.0);
  EXPECT_LT(detector.mean_alert_latency_s(), 120.0);

  EXPECT_TRUE(attacks.empty());  // session still open
  detector.finish();
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].packets.count(), 1200u);
}

TEST(OnlineDetector, BelowThresholdSessionsNeverAlert) {
  OnlineDetector detector({});
  std::uint64_t alerts = 0;
  detector.set_on_alert([&](const DetectedAttack&) { ++alerts; });
  // 20 packets over 5 seconds: too few, too short.
  for (int i = 0; i < 20; ++i) {
    detector.consume(
        response_record(kT0 + i * 250 * util::kMillisecond, 0xbbbb0001));
  }
  detector.finish();
  EXPECT_EQ(alerts, 0u);
  EXPECT_EQ(detector.attacks_closed(), 0u);
}

TEST(OnlineDetector, TimeoutSplitsSessions) {
  OnlineDetector detector({});
  std::vector<DetectedAttack> attacks;
  detector.set_on_attack(
      [&](const DetectedAttack& a) { attacks.push_back(a); });
  // Attack burst, then silence > timeout, then a second burst from the
  // same source.
  for (int burst = 0; burst < 2; ++burst) {
    const auto base = kT0 + burst * util::kHour;
    for (int i = 0; i < 200; ++i) {
      detector.consume(
          response_record(base + i * util::kSecond, 0xcccc0001));
    }
  }
  detector.finish();
  ASSERT_EQ(attacks.size(), 2u);
  EXPECT_EQ(attacks[0].packets.count(), 200u);
  EXPECT_EQ(attacks[1].packets.count(), 200u);
}

TEST(OnlineDetector, SweepBoundsOpenSessions) {
  OnlineDetectorConfig config;
  config.filter = [](const PacketRecord&) { return true; };
  OnlineDetector detector(config);
  // 10k sources, one packet each, spread over hours: the sweep must keep
  // the open-session table near the per-window population.
  for (int i = 0; i < 10000; ++i) {
    detector.consume(response_record(kT0 + i * util::kSecond,
                                     0xdd000000 + static_cast<std::uint32_t>(i)));
  }
  // Only sources within the last timeout window can still be open.
  EXPECT_LE(detector.open_sessions(), 400u);
  detector.finish();
  EXPECT_EQ(detector.open_sessions(), 0u);
}

TEST(OnlineDetector, MatchesBatchDetectorOnScenario) {
  // Run a small telescope scenario through both detectors: every batch
  // attack must be found online too (same thresholds, same sessions).
  const auto registry = asdb::AsRegistry::synthetic({}, 21);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, 21);
  auto scenario = telescope::ScenarioConfig::april2021(1, 99);
  scenario.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  scenario.tum.passes_per_day = 0;
  scenario.rwth.passes_per_day = 0;
  scenario.attacks.quic_attacks_per_day = 30;
  scenario.attacks.common_attacks_per_day = 0;
  telescope::TelescopeGenerator generator(scenario, registry, deployment);

  PipelineOptions options;
  options.window_start = scenario.start;
  options.days = scenario.days;
  Pipeline pipeline(options);

  OnlineDetector online({});
  std::vector<DetectedAttack> online_attacks;
  online.set_on_attack(
      [&](const DetectedAttack& a) { online_attacks.push_back(a); });

  Classifier classifier({});
  generator.generate([&](const net::RawPacket& packet) {
    pipeline.consume(packet);
    if (const auto record = classifier.classify(packet)) {
      online.consume(*record);
    }
  });
  online.finish();

  const auto batch = pipeline.analyze_attacks();
  ASSERT_GT(batch.quic_attacks.size(), 5u);
  EXPECT_EQ(online_attacks.size(), batch.quic_attacks.size());
  // Same victims, same packet counts.
  std::multiset<std::pair<std::uint32_t, std::uint64_t>> a, b;
  for (const auto& attack : batch.quic_attacks) {
    a.emplace(attack.victim.value(), attack.packets.count());
  }
  for (const auto& attack : online_attacks) {
    b.emplace(attack.victim.value(), attack.packets.count());
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace quicsand::core
