#include "net/headers.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/bytes.hpp"

namespace quicsand::net {
namespace {

const Ipv4Address kSrc = Ipv4Address::from_octets(192, 0, 2, 1);
const Ipv4Address kDst = Ipv4Address::from_octets(198, 51, 100, 2);

Ipv4Header header() {
  Ipv4Header ip;
  ip.src = kSrc;
  ip.dst = kDst;
  ip.ttl = 57;
  ip.identification = 0x1234;
  return ip;
}

TEST(InternetChecksum, KnownVector) {
  // Classic example from RFC 1071 materials.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLength) {
  const std::vector<std::uint8_t> data = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(BuildUdp, RoundTripsThroughDecode) {
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  const auto pkt = build_udp(header(), 50000, 443, payload);
  const auto decoded = decode_ipv4(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_udp());
  EXPECT_EQ(decoded->ip.src, kSrc);
  EXPECT_EQ(decoded->ip.dst, kDst);
  EXPECT_EQ(decoded->ip.ttl, 57);
  EXPECT_EQ(decoded->udp().src_port, 50000);
  EXPECT_EQ(decoded->udp().dst_port, 443);
  ASSERT_EQ(decoded->udp().payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         decoded->udp().payload.begin()));
}

TEST(BuildUdp, ChecksumsAreValid) {
  const auto pkt = build_udp(header(), 1234, 443, std::vector<std::uint8_t>(100, 0xab));
  EXPECT_TRUE(verify_checksums(pkt));
}

TEST(BuildUdp, EmptyPayload) {
  const auto pkt = build_udp(header(), 1, 2, {});
  const auto decoded = decode_ipv4(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->udp().payload.size(), 0u);
  EXPECT_TRUE(verify_checksums(pkt));
}

TEST(BuildTcp, RoundTripsThroughDecode) {
  TcpInfo tcp;
  tcp.src_port = 443;
  tcp.dst_port = 33333;
  tcp.seq = 0x01020304;
  tcp.ack = 0x0a0b0c0d;
  tcp.flags = TcpFlags::kSyn | TcpFlags::kAck;
  const auto pkt = build_tcp(header(), tcp);
  const auto decoded = decode_ipv4(pkt);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_tcp());
  EXPECT_EQ(decoded->tcp().src_port, 443);
  EXPECT_EQ(decoded->tcp().dst_port, 33333);
  EXPECT_EQ(decoded->tcp().seq, 0x01020304u);
  EXPECT_EQ(decoded->tcp().ack, 0x0a0b0c0du);
  EXPECT_EQ(decoded->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_TRUE(verify_checksums(pkt));
}

TEST(BuildTcp, RstHasValidChecksum) {
  TcpInfo tcp;
  tcp.src_port = 443;
  tcp.dst_port = 50123;
  tcp.flags = TcpFlags::kRst;
  EXPECT_TRUE(verify_checksums(build_tcp(header(), tcp)));
}

TEST(BuildIcmp, RoundTripsThroughDecode) {
  IcmpInfo icmp;
  icmp.type = 3;  // destination unreachable
  icmp.code = 1;
  const std::vector<std::uint8_t> payload(8, 0x11);
  icmp.payload = payload;
  const auto pkt = build_icmp(header(), icmp);
  const auto decoded = decode_ipv4(pkt);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_icmp());
  EXPECT_EQ(decoded->icmp().type, 3);
  EXPECT_EQ(decoded->icmp().code, 1);
  EXPECT_EQ(decoded->icmp().payload.size(), 8u);
  EXPECT_TRUE(verify_checksums(pkt));
}

TEST(DecodeIpv4, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> data(10, 0x45);
  EXPECT_FALSE(decode_ipv4(data).has_value());
}

TEST(DecodeIpv4, RejectsNonIpv4Version) {
  auto pkt = build_udp(header(), 1, 2, {});
  pkt[0] = 0x65;  // version 6
  EXPECT_FALSE(decode_ipv4(pkt).has_value());
}

TEST(DecodeIpv4, RejectsTotalLengthBeyondBuffer) {
  auto pkt = build_udp(header(), 1, 2, {});
  pkt[2] = 0xff;  // total length 0xff..
  pkt[3] = 0xff;
  EXPECT_FALSE(decode_ipv4(pkt).has_value());
}

TEST(DecodeIpv4, RejectsUnsupportedProtocol) {
  auto pkt = build_udp(header(), 1, 2, {});
  pkt[9] = 47;  // GRE
  EXPECT_FALSE(decode_ipv4(pkt).has_value());
}

TEST(DecodeIpv4, RejectsTruncatedUdpHeader) {
  auto pkt = build_udp(header(), 1, 2, {});
  pkt.resize(24);  // 20 IP + 4 bytes of UDP
  pkt[2] = 0;
  pkt[3] = 24;
  EXPECT_FALSE(decode_ipv4(pkt).has_value());
}

TEST(DecodeIpv4, RejectsBadUdpLength) {
  auto pkt = build_udp(header(), 1, 2, {});
  pkt[24] = 0xff;  // UDP length field absurdly large
  pkt[25] = 0xff;
  EXPECT_FALSE(decode_ipv4(pkt).has_value());
}

TEST(DecodeIpv4, TrailingBytesAfterTotalLengthIgnored) {
  auto pkt = build_udp(header(), 9, 443, std::vector<std::uint8_t>{1, 2, 3});
  pkt.push_back(0xff);  // capture slack
  pkt.push_back(0xff);
  const auto decoded = decode_ipv4(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->udp().payload.size(), 3u);
}

TEST(VerifyChecksums, DetectsCorruptedIpHeader) {
  auto pkt = build_udp(header(), 1, 2, {});
  pkt[8] ^= 0xff;  // ttl flip invalidates IP checksum
  EXPECT_FALSE(verify_checksums(pkt));
}

TEST(VerifyChecksums, DetectsCorruptedUdpPayload) {
  auto pkt = build_udp(header(), 1, 2, std::vector<std::uint8_t>(10, 0x42));
  pkt.back() ^= 0x01;
  EXPECT_FALSE(verify_checksums(pkt));
}

}  // namespace
}  // namespace quicsand::net
