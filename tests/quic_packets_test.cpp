#include "quic/packets.hpp"

#include <gtest/gtest.h>

#include "quic/dissector.hpp"
#include "quic/frames.hpp"
#include "quic/initial_aead.hpp"
#include "quic/tls_messages.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

TEST(HandshakeContextTest, RandomHasTypicalCidLengths) {
  util::Rng rng(1);
  const auto ctx = HandshakeContext::random(1, rng);
  EXPECT_EQ(ctx.client_dcid.size(), 8u);
  EXPECT_EQ(ctx.client_scid.size(), 8u);
  EXPECT_EQ(ctx.server_scid.size(), 16u);
  const auto other = HandshakeContext::random(1, rng);
  EXPECT_NE(ctx.client_dcid, other.client_dcid);
}

TEST(ClientInitial, FullFidelityDecryptsToClientHello) {
  util::Rng rng(2);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram = build_client_initial(ctx, "www.facebook.com", rng,
                                             CryptoFidelity::kFull);
  const auto view = parse_long_header(datagram, 0);
  ASSERT_TRUE(view.has_value());
  const auto keys = derive_initial_keys(1, ctx.client_dcid,
                                        Perspective::kClient);
  const auto opened = open_long_header_packet(keys, datagram, *view);
  ASSERT_TRUE(opened.has_value());
  const auto frames = parse_frames(opened->payload);
  ASSERT_TRUE(frames.has_value());
  bool found_ch = false;
  for (const auto& f : *frames) {
    if (const auto* crypto = std::get_if<CryptoFrame>(&f)) {
      const auto info = parse_tls_message(crypto->data);
      ASSERT_TRUE(info.has_value());
      EXPECT_EQ(info->type, TlsHandshakeType::kClientHello);
      ASSERT_TRUE(info->sni.has_value());
      EXPECT_EQ(*info->sni, "www.facebook.com");
      found_ch = true;
    }
  }
  EXPECT_TRUE(found_ch);
}

TEST(ClientInitial, PaddedToExactly1200) {
  util::Rng rng(3);
  for (auto fidelity : {CryptoFidelity::kFull, CryptoFidelity::kFast}) {
    const auto ctx = HandshakeContext::random(1, rng);
    EXPECT_EQ(build_client_initial(ctx, "a.example", rng, fidelity).size(),
              1200u);
  }
}

TEST(ClientInitial, CustomPaddingTarget) {
  util::Rng rng(4);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram = build_client_initial(ctx, "a.example", rng,
                                             CryptoFidelity::kFast, {}, 1350);
  EXPECT_EQ(datagram.size(), 1350u);
}

TEST(ClientInitial, CarriesToken) {
  util::Rng rng(5);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto token = rng.bytes(41);
  const auto datagram = build_client_initial(ctx, "a.example", rng,
                                             CryptoFidelity::kFast, token);
  const auto view = parse_long_header(datagram, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->token_length, 41u);
  EXPECT_TRUE(std::equal(token.begin(), token.end(), view->token.begin()));
}

TEST(ServerFlight, InitialPlusHandshakeNear1200Bytes) {
  util::Rng rng(6);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram =
      build_server_initial_handshake(ctx, rng, CryptoFidelity::kFast);
  EXPECT_GT(datagram.size(), 1000u);
  EXPECT_LE(datagram.size(), 1400u);
}

TEST(ServerFlight, FullFidelityHandshakeDecrypts) {
  util::Rng rng(7);
  const auto ctx = HandshakeContext::random(0xff00001d, rng);
  const auto datagram =
      build_server_initial_handshake(ctx, rng, CryptoFidelity::kFull);
  const auto v1 = parse_long_header(datagram, 0);
  ASSERT_TRUE(v1.has_value());
  const auto v2 = parse_long_header(datagram, v1->packet_end);
  ASSERT_TRUE(v2.has_value());
  const auto hkeys = derive_handshake_keys_simulated(
      0xff00001d, ctx.client_dcid, Perspective::kServer);
  const auto opened = open_long_header_packet(hkeys, datagram, *v2);
  ASSERT_TRUE(opened.has_value());
  const auto frames = parse_frames(opened->payload);
  ASSERT_TRUE(frames.has_value());
  EXPECT_TRUE(std::holds_alternative<CryptoFrame>((*frames)[0]));
}

TEST(ServerFlight, InitialDecryptsWithServerKeysFromOriginalDcid) {
  util::Rng rng(8);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto datagram =
      build_server_initial_handshake(ctx, rng, CryptoFidelity::kFull);
  const auto view = parse_long_header(datagram, 0);
  ASSERT_TRUE(view.has_value());
  // Keyed on the ORIGINAL client DCID, not the DCID in this header.
  const auto keys =
      derive_initial_keys(1, ctx.client_dcid, Perspective::kServer);
  const auto opened = open_long_header_packet(keys, datagram, *view);
  ASSERT_TRUE(opened.has_value());
  const auto frames = parse_frames(opened->payload);
  ASSERT_TRUE(frames.has_value());
  // ACK + CRYPTO(ServerHello).
  bool has_ack = false, has_sh = false;
  for (const auto& f : *frames) {
    if (std::holds_alternative<AckFrame>(f)) has_ack = true;
    if (const auto* c = std::get_if<CryptoFrame>(&f)) {
      const auto info = parse_tls_message(c->data);
      has_sh = info && info->type == TlsHandshakeType::kServerHello;
    }
  }
  EXPECT_TRUE(has_ack);
  EXPECT_TRUE(has_sh);
}

TEST(ServerHandshakePing, SmallAndParseable) {
  util::Rng rng(9);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto ping =
      build_server_handshake_ping(ctx, rng, CryptoFidelity::kFull);
  EXPECT_LT(ping.size(), 100u);
  const auto view = parse_long_header(ping, 0);
  ASSERT_TRUE(view.has_value());
  const auto hkeys = derive_handshake_keys_simulated(1, ctx.client_dcid,
                                                     Perspective::kServer);
  const auto opened = open_long_header_packet(hkeys, ping, *view);
  ASSERT_TRUE(opened.has_value());
  const auto frames = parse_frames(opened->payload);
  ASSERT_TRUE(frames.has_value());
  EXPECT_TRUE(std::holds_alternative<PingFrame>((*frames)[0]));
}

TEST(ClientHandshakeFinish, DecryptsWithClientHandshakeKeys) {
  util::Rng rng(10);
  const auto ctx = HandshakeContext::random(1, rng);
  const auto fin =
      build_client_handshake_finish(ctx, rng, CryptoFidelity::kFull);
  const auto view = parse_long_header(fin, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->dcid, ctx.server_scid);
  const auto keys = derive_handshake_keys_simulated(1, ctx.client_dcid,
                                                    Perspective::kClient);
  EXPECT_TRUE(open_long_header_packet(keys, fin, *view).has_value());
}

TEST(FastFidelity, SameWireSizeAsFull) {
  // kFast must be indistinguishable in size/header from kFull so that the
  // telescope statistics are identical across fidelities.
  util::Rng rng_a(11), rng_b(11);
  const auto ctx_a = HandshakeContext::random(1, rng_a);
  const auto ctx_b = HandshakeContext::random(1, rng_b);
  const auto full =
      build_client_initial(ctx_a, "example.org", rng_a, CryptoFidelity::kFull);
  const auto fast =
      build_client_initial(ctx_b, "example.org", rng_b, CryptoFidelity::kFast);
  EXPECT_EQ(full.size(), fast.size());
  // Same parseable header fields.
  const auto vf = parse_long_header(full, 0);
  const auto vq = parse_long_header(fast, 0);
  ASSERT_TRUE(vf.has_value());
  ASSERT_TRUE(vq.has_value());
  EXPECT_EQ(vf->length, vq->length);
  EXPECT_EQ(vf->dcid.size(), vq->dcid.size());
}

TEST(VersionNegotiationBuilder, RejectsEmptyVersionList) {
  util::Rng rng(12);
  EXPECT_THROW(
      build_version_negotiation(ConnectionId(), ConnectionId(), {}, rng),
      std::invalid_argument);
}

TEST(StatelessReset, MinimumSizeEnforced) {
  util::Rng rng(13);
  EXPECT_THROW(build_stateless_reset(rng, 20), std::invalid_argument);
  const auto reset = build_stateless_reset(rng, 21);
  EXPECT_EQ(reset.size(), 21u);
  EXPECT_EQ(reset[0] & 0xc0, 0x40);  // short form, fixed bit
}

}  // namespace
}  // namespace quicsand::quic
