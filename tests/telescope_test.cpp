#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "net/headers.hpp"
#include "quic/dissector.hpp"
#include "scanner/deployment.hpp"
#include "telescope/attack_schedule.hpp"
#include "telescope/generator.hpp"

namespace quicsand::telescope {
namespace {

const asdb::AsRegistry& registry() {
  static const auto reg = asdb::AsRegistry::synthetic({}, 42);
  return reg;
}

const scanner::Deployment& deployment() {
  static const auto dep = scanner::Deployment::synthetic(registry(), {}, 42);
  return dep;
}

/// Small, fast scenario for tests: a /20 "telescope" and one day.
ScenarioConfig test_scenario(std::uint64_t seed = 5) {
  auto config = ScenarioConfig::april2021(1, seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  config.tum.passes_per_day = 1.0;
  config.rwth.passes_per_day = 1.0;
  config.tum.pass_duration = 6 * util::kHour;
  config.rwth.pass_duration = 6 * util::kHour;
  config.botnet.sessions_per_day = 120;
  config.attacks.quic_attacks_per_day = 30;
  config.attacks.common_attacks_per_day = 60;
  config.misconfig.sessions_per_day = 60;
  return config;
}

TEST(Scenario, April2021Defaults) {
  const auto config = ScenarioConfig::april2021();
  EXPECT_EQ(config.days, 30);
  EXPECT_EQ(config.telescope.length(), 9);
  EXPECT_EQ(config.end() - config.start, 30 * util::kDay);
  EXPECT_NEAR(config.tum.passes_per_day * 30, 5.4, 0.01);
  EXPECT_THROW(ScenarioConfig::april2021(0), std::invalid_argument);
}

TEST(AttackSchedule, CountsAndOrdering) {
  auto config = test_scenario();
  util::Rng rng(7);
  const auto attacks = plan_attacks(config, registry(), deployment(), rng);
  std::uint64_t quic = 0, common = 0;
  util::Timestamp last{};
  for (const auto& attack : attacks) {
    EXPECT_GE(attack.start, last);
    last = attack.start;
    EXPECT_GE(attack.start, config.start);
    EXPECT_LT(attack.start, config.end());
    EXPECT_GT(attack.duration, util::Duration{});
    EXPECT_GT(attack.peak_pps, 0);
    if (attack.protocol == AttackProtocol::kQuic) {
      ++quic;
    } else {
      ++common;
    }
  }
  EXPECT_EQ(quic, 30u);
  EXPECT_GE(common, 60u);  // background + paired attacks
}

TEST(AttackSchedule, RelationSharesMatchMix) {
  auto config = test_scenario();
  config.attacks.quic_attacks_per_day = 1500;  // large sample
  config.attacks.common_attacks_per_day = 0;
  util::Rng rng(11);
  const auto attacks = plan_attacks(config, registry(), deployment(), rng);
  std::map<PlannedRelation, std::uint64_t> counts;
  std::uint64_t quic = 0;
  for (const auto& attack : attacks) {
    if (attack.protocol != AttackProtocol::kQuic) continue;
    ++quic;
    ++counts[attack.relation];
  }
  ASSERT_GT(quic, 1000u);
  const auto share = [&](PlannedRelation r) {
    return static_cast<double>(counts[r]) / static_cast<double>(quic);
  };
  EXPECT_NEAR(share(PlannedRelation::kConcurrent), 0.51, 0.08);
  EXPECT_NEAR(share(PlannedRelation::kSequential), 0.40, 0.08);
  EXPECT_NEAR(share(PlannedRelation::kIsolated), 0.09, 0.06);
}

TEST(AttackSchedule, VictimMixFavoursGoogleAndFacebook) {
  auto config = test_scenario();
  // Per-victim attack counts are heavy-tailed, so the attack-weighted
  // provider share has high variance; use a large sample.
  config.days = 3;
  config.attacks.quic_attacks_per_day = 1200;
  config.attacks.common_attacks_per_day = 0;
  std::uint64_t google = 0, facebook = 0, known = 0, quic = 0;
  // Pool several independent plans: single-plan shares wobble by several
  // percent because per-victim attack counts are heavy-tailed.
  for (const std::uint64_t seed : {13u, 14u, 15u, 16u}) {
    util::Rng rng(seed);
    const auto attacks = plan_attacks(config, registry(), deployment(), rng);
    for (const auto& attack : attacks) {
      if (attack.protocol != AttackProtocol::kQuic) continue;
      ++quic;
      if (attack.victim_asn == asdb::AsRegistry::kGoogle) ++google;
      if (attack.victim_asn == asdb::AsRegistry::kFacebook) ++facebook;
      if (attack.victim_is_known_server) ++known;
    }
  }
  ASSERT_GT(quic, 800u);
  EXPECT_NEAR(static_cast<double>(google) / quic, 0.58, 0.10);
  EXPECT_NEAR(static_cast<double>(facebook) / quic, 0.25, 0.08);
  EXPECT_GT(static_cast<double>(known) / quic, 0.93);
}

TEST(AttackSchedule, QuicAttacksOnSameVictimDoNotOverlap) {
  auto config = test_scenario();
  config.attacks.quic_attacks_per_day = 400;
  util::Rng rng(17);
  const auto attacks = plan_attacks(config, registry(), deployment(), rng);
  std::map<std::uint32_t, util::Timestamp> last_end;
  for (const auto& attack : attacks) {
    if (attack.protocol != AttackProtocol::kQuic) continue;
    auto& end = last_end[attack.victim.value()];
    EXPECT_GE(attack.start, end);
    end = attack.start + attack.duration;
  }
}

TEST(AttackSchedule, ProtocolNames) {
  EXPECT_STREQ(attack_protocol_name(AttackProtocol::kQuic), "QUIC");
  EXPECT_STREQ(attack_protocol_name(AttackProtocol::kTcp), "TCP");
  EXPECT_STREQ(attack_protocol_name(AttackProtocol::kIcmp), "ICMP");
}

TEST(Generator, StreamIsTimeOrderedAndInWindow) {
  auto config = test_scenario();
  config.tum.passes_per_day = 0;  // keep this test light
  config.rwth.passes_per_day = 0;
  TelescopeGenerator generator(config, registry(), deployment());
  util::Timestamp last{};
  const auto count = generator.generate([&](const net::RawPacket& packet) {
    EXPECT_GE(packet.timestamp, last);
    last = packet.timestamp;
    EXPECT_GE(packet.timestamp, config.start);
    EXPECT_LT(packet.timestamp, config.end());
  });
  EXPECT_GT(count, 1000u);
  EXPECT_EQ(generator.ground_truth().total_packet_count, count);
}

TEST(Generator, PacketsDecodeAndTargetTelescope) {
  auto config = test_scenario(9);
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.common_attacks_per_day = 10;
  TelescopeGenerator generator(config, registry(), deployment());
  std::uint64_t udp = 0, tcp = 0, icmp = 0;
  generator.generate([&](const net::RawPacket& packet) {
    const auto decoded = net::decode_ipv4(packet.data);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(config.telescope.contains(decoded->ip.dst));
    EXPECT_FALSE(config.telescope.contains(decoded->ip.src));
    if (decoded->is_udp()) {
      ++udp;
    } else if (decoded->is_tcp()) {
      ++tcp;
    } else {
      ++icmp;
    }
  });
  EXPECT_GT(udp, 0u);
  EXPECT_GT(tcp, 0u);
  EXPECT_GT(icmp, 0u);
}

TEST(Generator, ResearchScannerCoversTelescope) {
  auto config = test_scenario(21);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 24};
  config.botnet.sessions_per_day = 0;
  config.attacks.quic_attacks_per_day = 0;
  config.attacks.common_attacks_per_day = 0;
  config.misconfig.sessions_per_day = 0;
  config.rwth.passes_per_day = 0;
  TelescopeGenerator generator(config, registry(), deployment());
  std::unordered_set<std::uint32_t> targets;
  const auto tum_prefix = registry().prefixes_of(config.tum.asn).front();
  const auto count = generator.generate([&](const net::RawPacket& packet) {
    const auto decoded = net::decode_ipv4(packet.data);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(tum_prefix.contains(decoded->ip.src));
    EXPECT_EQ(decoded->udp().dst_port, 443);
    const auto dissected = quic::dissect_udp_payload(decoded->udp().payload);
    ASSERT_TRUE(dissected.is_quic);
    EXPECT_EQ(dissected.packets[0].kind, quic::QuicPacketKind::kInitial);
    targets.insert(decoded->ip.dst.value());
  });
  EXPECT_EQ(count, 256u);  // one pass over a /24
  EXPECT_EQ(targets.size(), 256u);
  EXPECT_EQ(generator.ground_truth().research_probe_count, 256u);
}

TEST(Generator, DeterministicForSameSeed) {
  auto config = test_scenario(33);
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.botnet.sessions_per_day = 20;
  config.attacks.quic_attacks_per_day = 5;
  config.attacks.common_attacks_per_day = 5;
  config.misconfig.sessions_per_day = 5;
  TelescopeGenerator a(config, registry(), deployment());
  TelescopeGenerator b(config, registry(), deployment());
  std::vector<net::RawPacket> pa, pb;
  a.generate([&](const net::RawPacket& packet) { pa.push_back(packet); });
  b.generate([&](const net::RawPacket& packet) { pb.push_back(packet); });
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].timestamp, pb[i].timestamp);
    EXPECT_EQ(pa[i].data, pb[i].data);
  }
}

TEST(Generator, IntelDbReflectsGroundTruth) {
  auto config = test_scenario(45);
  config.tum.passes_per_day = 1.0;
  config.botnet.sessions_per_day = 800;
  config.botnet.tagged_malicious_share = 0.1;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto db = generator.make_intel_db();
  const auto& truth = generator.ground_truth();
  ASSERT_GT(truth.botnet_sources.size(), 300u);
  std::uint64_t tagged = 0;
  for (const auto& source : truth.botnet_sources) {
    const auto& entry = db.lookup(source.address);
    if (source.tagged_malicious) {
      ++tagged;
      EXPECT_EQ(entry.category, threat::Category::kMalicious);
      EXPECT_FALSE(entry.tag_list.empty());
    }
  }
  EXPECT_NEAR(static_cast<double>(tagged) / truth.botnet_sources.size(), 0.1,
              0.04);
}

TEST(Generator, BotnetSourcesComeFromEyeballCountries) {
  auto config = test_scenario(57);
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.botnet.sessions_per_day = 1500;
  TelescopeGenerator generator(config, registry(), deployment());
  const auto& truth = generator.ground_truth();
  ASSERT_GT(truth.botnet_sources.size(), 1000u);
  std::map<std::string, std::uint64_t> by_country;
  for (const auto& source : truth.botnet_sources) {
    const auto* info = registry().lookup(source.address);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->type, asdb::NetworkType::kEyeball);
    ++by_country[source.country];
  }
  const double total = static_cast<double>(truth.botnet_sources.size());
  EXPECT_NEAR(by_country["BD"] / total, 0.34, 0.07);
  EXPECT_NEAR(by_country["US"] / total, 0.27, 0.07);
}

}  // namespace
}  // namespace quicsand::telescope
