#include "net/ip.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace quicsand::net {
namespace {

TEST(Ipv4Address, OctetsAndValue) {
  const auto a = Ipv4Address::from_octets(192, 0, 2, 1);
  EXPECT_EQ(a.value(), 0xc0000201u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(3), 1);
}

TEST(Ipv4Address, ToString) {
  EXPECT_EQ(Ipv4Address::from_octets(8, 8, 8, 8).to_string(), "8.8.8.8");
  EXPECT_EQ(Ipv4Address(0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address(0xffffffff).to_string(), "255.255.255.255");
}

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::parse("10.20.30.40");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Address::from_octets(10, 20, 30, 40));
}

TEST(Ipv4Address, ParseInvalid) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address::from_octets(1, 0, 0, 0),
            Ipv4Address::from_octets(2, 0, 0, 0));
}

TEST(Ipv4Address, HashDispersesSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  std::hash<Ipv4Address> h;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(h(Ipv4Address(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Ipv4Prefix, ContainsAndSize) {
  const Ipv4Prefix slash9(Ipv4Address::from_octets(44, 0, 0, 0), 9);
  EXPECT_EQ(slash9.size(), 1ull << 23);
  EXPECT_TRUE(slash9.contains(Ipv4Address::from_octets(44, 0, 0, 1)));
  EXPECT_TRUE(slash9.contains(Ipv4Address::from_octets(44, 127, 255, 255)));
  EXPECT_FALSE(slash9.contains(Ipv4Address::from_octets(44, 128, 0, 0)));
  EXPECT_FALSE(slash9.contains(Ipv4Address::from_octets(45, 0, 0, 0)));
}

TEST(Ipv4Prefix, NormalizesBaseAddress) {
  const Ipv4Prefix p(Ipv4Address::from_octets(10, 1, 2, 3), 8);
  EXPECT_EQ(p.base(), Ipv4Address::from_octets(10, 0, 0, 0));
}

TEST(Ipv4Prefix, ZeroLengthCoversEverything) {
  const Ipv4Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(0xffffffff)));
  EXPECT_EQ(all.size(), 1ull << 32);
}

TEST(Ipv4Prefix, SlashThirtyTwoIsSingleHost) {
  const Ipv4Prefix host(Ipv4Address::from_octets(1, 2, 3, 4), 32);
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(Ipv4Address::from_octets(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(Ipv4Address::from_octets(1, 2, 3, 5)));
}

TEST(Ipv4Prefix, AtEnumeratesAddresses) {
  const Ipv4Prefix p(Ipv4Address::from_octets(198, 51, 100, 0), 24);
  EXPECT_EQ(p.at(0), Ipv4Address::from_octets(198, 51, 100, 0));
  EXPECT_EQ(p.at(255), Ipv4Address::from_octets(198, 51, 100, 255));
}

TEST(Ipv4Prefix, ParseAndToString) {
  auto p = Ipv4Prefix::parse("44.0.0.0/9");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "44.0.0.0/9");
  EXPECT_EQ(p->length(), 9);
}

TEST(Ipv4Prefix, ParseInvalid) {
  EXPECT_FALSE(Ipv4Prefix::parse("44.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("44.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("44.0.0.0/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("bad/9").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4/9x").has_value());
}

}  // namespace
}  // namespace quicsand::net
