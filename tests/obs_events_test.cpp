// Detector event log: the OnlineDetector emits a structured stream in
// causal order (alert_fired before attack_closed before the session's
// eviction), the online.* metrics agree with the detector's own
// accounting, and the NDJSON serialization is pinned.
#include <gtest/gtest.h>

#include <sstream>

#include "core/online.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace quicsand::core {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

PacketRecord response_record(util::Timestamp t, std::uint32_t src) {
  PacketRecord record;
  record.timestamp = t;
  record.src = net::Ipv4Address(src);
  record.dst = net::Ipv4Address(0x2c000001);
  record.src_port = 443;
  record.dst_port = 40000;
  record.wire_size = 1200;
  record.cls = TrafficClass::kQuicResponse;
  record.quic_version = 1;
  return record;
}

TEST(ObsEvents, DetectorEmitsAlertThenCloseThenEviction) {
  obs::EventLog log;
  obs::MetricsRegistry metrics;
  OnlineDetectorConfig config;
  config.obs.events = &log;
  config.obs.metrics = &metrics;
  OnlineDetector detector(config);

  // One attacking source (2 pps, 10 min: alerts around the 1-min mark)
  // and one two-packet source that never alerts (evicted by the sweep
  // once it has been idle past the session timeout).
  for (int i = 0; i < 1200; ++i) {
    const auto t = kT0 + i * util::kSecond / 2;
    detector.consume(response_record(t, 0xaaaa0001));
    if (i < 2) detector.consume(response_record(t, 0xbbbb0001));
  }
  detector.finish();

  const auto events = log.events();
  // alert + close + 2 evictions (one per session).
  ASSERT_EQ(events.size(), 4u);

  std::size_t alert_idx = events.size(), close_idx = events.size();
  std::size_t alerted_evictions = 0, quiet_evictions = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    switch (events[i].type) {
      case obs::DetectorEventType::kAlertFired: alert_idx = i; break;
      case obs::DetectorEventType::kAttackClosed: close_idx = i; break;
      case obs::DetectorEventType::kSessionEvicted:
        (events[i].alerted ? alerted_evictions : quiet_evictions) += 1;
        break;
    }
  }
  ASSERT_LT(alert_idx, events.size());
  ASSERT_LT(close_idx, events.size());
  EXPECT_LT(alert_idx, close_idx);  // the alert precedes the close
  EXPECT_EQ(alerted_evictions, 1u);
  EXPECT_EQ(quiet_evictions, 1u);

  const auto& alert = events[alert_idx];
  EXPECT_EQ(alert.victim, "170.170.0.1");
  EXPECT_GT(alert.alert_latency_s, 60.0);
  EXPECT_LT(alert.alert_latency_s, 120.0);
  EXPECT_LT(alert.time, events[close_idx].time);

  const auto& close = events[close_idx];
  EXPECT_EQ(close.victim, "170.170.0.1");
  EXPECT_EQ(close.packets, 1200u);
  EXPECT_NEAR(close.duration_s, 599.5, 0.1);

  // The online.* metrics mirror the detector counters.
  EXPECT_EQ(metrics.counter("online.records").value(), 1202u);
  EXPECT_EQ(metrics.counter("online.alerts").value(),
            detector.alerts_fired());
  EXPECT_EQ(metrics.counter("online.attacks_closed").value(),
            detector.attacks_closed());
  EXPECT_EQ(metrics.counter("online.sessions_evicted").value(),
            detector.sessions_evicted());
  EXPECT_EQ(metrics.gauge("online.open_sessions").value(), 0);
  EXPECT_EQ(metrics.latency("online.alert_latency_us").count(), 1u);
}

TEST(ObsEvents, NdjsonSerializationIsPinned) {
  obs::DetectorEvent event;
  event.type = obs::DetectorEventType::kAlertFired;
  event.time = kT0;
  event.victim = "44.1.2.3";
  event.packets = 131;
  event.peak_pps = 2.18;
  event.alert_latency_s = 86.0;
  EXPECT_EQ(obs::to_json_line(event),
            "{\"event\": \"alert_fired\", "
            "\"time\": \"2021-04-01 00:00:00\", "
            "\"time_us\": 1617235200000000, "
            "\"victim\": \"44.1.2.3\", "
            "\"packets\": 131, \"peak_pps\": 2.180, "
            "\"alert_latency_s\": 86.000}");

  // With a wall-clock pipeline latency attached, the alert line also
  // carries detect_latency_s; absent (-1) it stays off the line, which
  // is what keeps the scenario-mode goldens above byte-identical.
  event.detect_latency_s = 0.25;
  EXPECT_EQ(obs::to_json_line(event),
            "{\"event\": \"alert_fired\", "
            "\"time\": \"2021-04-01 00:00:00\", "
            "\"time_us\": 1617235200000000, "
            "\"victim\": \"44.1.2.3\", "
            "\"packets\": 131, \"peak_pps\": 2.180, "
            "\"alert_latency_s\": 86.000, "
            "\"detect_latency_s\": 0.250}");
  event.detect_latency_s = -1;

  event.type = obs::DetectorEventType::kSessionEvicted;
  event.alert_latency_s = -1;
  event.duration_s = 12.5;
  event.alerted = true;
  EXPECT_EQ(obs::to_json_line(event),
            "{\"event\": \"session_evicted\", "
            "\"time\": \"2021-04-01 00:00:00\", "
            "\"time_us\": 1617235200000000, "
            "\"victim\": \"44.1.2.3\", "
            "\"packets\": 131, \"peak_pps\": 2.180, "
            "\"duration_s\": 12.500, \"alerted\": true}");
}

TEST(ObsEvents, StreamTeeMatchesBatchExport) {
  obs::EventLog log;
  std::ostringstream teed;
  log.set_stream(&teed);

  obs::DetectorEvent event;
  event.type = obs::DetectorEventType::kAttackClosed;
  event.time = kT0 + util::kMinute;
  event.victim = "44.0.0.9";
  event.packets = 500;
  event.peak_pps = 10;
  event.duration_s = 60;
  log.emit(event);
  event.packets = 600;
  log.emit(event);

  std::ostringstream batch;
  log.write_ndjson(batch);
  EXPECT_EQ(teed.str(), batch.str());
  EXPECT_EQ(log.size(), 2u);
  // One JSON object per line.
  std::istringstream lines(batch.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2u);
}

/// Ostream over a streambuf that counts sync() calls, to observe which
/// emits force a flush through the tee stream.
class FlushCountingBuf : public std::stringbuf {
 public:
  int flushes = 0;

 protected:
  int sync() override {
    ++flushes;
    return std::stringbuf::sync();
  }
};

TEST(ObsEvents, AlertEventsFlushTheTeeStream) {
  obs::EventLog log;
  FlushCountingBuf buf;
  std::ostream out(&buf);
  log.set_stream(&out);

  obs::DetectorEvent event;
  event.type = obs::DetectorEventType::kSessionEvicted;
  event.victim = "44.0.0.9";
  log.emit(event);
  EXPECT_EQ(buf.flushes, 0);  // routine events may sit in the buffer

  event.type = obs::DetectorEventType::kAlertFired;
  log.emit(event);
  EXPECT_EQ(buf.flushes, 1);  // an alert line must hit the sink now

  log.flush();
  EXPECT_EQ(buf.flushes, 2);
}

TEST(ObsEvents, SubscriptionReceivesLinesInOrder) {
  obs::EventLog log;
  const auto subscription = log.subscribe(8);

  obs::DetectorEvent event;
  event.type = obs::DetectorEventType::kAlertFired;
  event.victim = "44.0.0.1";
  log.emit(event);
  event.victim = "44.0.0.2";
  log.emit(event);

  const auto first = subscription->pop(util::Duration{0});
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("44.0.0.1"), std::string::npos);
  const auto second = subscription->pop(util::Duration{0});
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("44.0.0.2"), std::string::npos);
  EXPECT_FALSE(subscription->pop(util::Duration{0}).has_value());
  EXPECT_EQ(subscription->take_dropped(), 0u);
  log.unsubscribe(subscription);
  EXPECT_TRUE(subscription->closed());
}

TEST(ObsEvents, SlowSubscriberDropsOldestAndCounts) {
  obs::EventLog log;
  const auto subscription = log.subscribe(2);

  obs::DetectorEvent event;
  event.type = obs::DetectorEventType::kAlertFired;
  for (const char* victim : {"44.0.0.1", "44.0.0.2", "44.0.0.3"}) {
    event.victim = victim;
    log.emit(event);
  }

  // Ring of 2: the oldest line was dropped and counted.
  EXPECT_EQ(subscription->take_dropped(), 1u);
  EXPECT_EQ(subscription->take_dropped(), 0u);  // read-and-reset
  const auto first = subscription->pop(util::Duration{0});
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("44.0.0.2"), std::string::npos);
  const auto second = subscription->pop(util::Duration{0});
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("44.0.0.3"), std::string::npos);
}

TEST(ObsEvents, DestructorClosesSubscriptions) {
  std::shared_ptr<obs::EventSubscription> subscription;
  {
    obs::EventLog log;
    subscription = log.subscribe(4);
    EXPECT_FALSE(subscription->closed());
  }
  EXPECT_TRUE(subscription->closed());
  EXPECT_FALSE(subscription->pop(util::Duration{0}).has_value());
}

}  // namespace
}  // namespace quicsand::core
