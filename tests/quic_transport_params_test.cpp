#include "quic/transport_params.hpp"

#include <gtest/gtest.h>

#include "quic/tls_messages.hpp"
#include "quic/varint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

TEST(TransportParams, TypicalClientRoundTrips) {
  util::Rng rng(1);
  const auto scid = ConnectionId(rng.bytes(8));
  const auto params = TransportParameters::typical_client(scid);
  const auto encoded = encode_transport_parameters(params);
  EXPECT_GT(encoded.size(), 30u);
  const auto parsed = parse_transport_parameters(encoded);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->max_idle_timeout_ms, 30000u);
  EXPECT_EQ(parsed->max_udp_payload_size, 1472u);
  EXPECT_EQ(parsed->initial_max_data, 1u << 20);
  EXPECT_EQ(parsed->initial_max_streams_bidi, 100u);
  EXPECT_EQ(parsed->ack_delay_exponent, 3u);
  EXPECT_EQ(parsed->max_ack_delay_ms, 25u);
  EXPECT_EQ(parsed->active_connection_id_limit, 4u);
  ASSERT_TRUE(parsed->initial_source_connection_id.has_value());
  EXPECT_EQ(*parsed->initial_source_connection_id, scid);
  EXPECT_FALSE(parsed->disable_active_migration);
  EXPECT_TRUE(parsed->unknown.empty());
}

TEST(TransportParams, FlagAndCidParameters) {
  util::Rng rng(2);
  TransportParameters params;
  params.disable_active_migration = true;
  params.original_destination_connection_id = ConnectionId(rng.bytes(8));
  params.retry_source_connection_id = ConnectionId(rng.bytes(16));
  const auto parsed =
      parse_transport_parameters(encode_transport_parameters(params));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->disable_active_migration);
  EXPECT_EQ(parsed->original_destination_connection_id,
            params.original_destination_connection_id);
  EXPECT_EQ(parsed->retry_source_connection_id,
            params.retry_source_connection_id);
}

TEST(TransportParams, UnknownAndGreaseIdsPreserved) {
  util::Rng rng(3);
  TransportParameters params;
  params.initial_max_data = 5;
  params.unknown.emplace_back(27 + 31 * 7,  // grease id
                              rng.bytes(5));
  params.unknown.emplace_back(0x7733, rng.bytes(3));
  const auto parsed =
      parse_transport_parameters(encode_transport_parameters(params));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->unknown.size(), 2u);
  EXPECT_EQ(parsed->unknown[0].first, 27u + 31 * 7);
  EXPECT_EQ(parsed->unknown[0].second, params.unknown[0].second);
  EXPECT_EQ(parsed->initial_max_data, 5u);
}

TEST(TransportParams, RejectsDuplicates) {
  util::ByteWriter w;
  for (int i = 0; i < 2; ++i) {
    write_varint(w, 0x04);  // initial_max_data twice
    write_varint(w, 1);
    write_varint(w, 7);
  }
  EXPECT_FALSE(parse_transport_parameters(w.view()).has_value());
}

TEST(TransportParams, RejectsMalformedRecords) {
  // Length exceeding the buffer.
  util::ByteWriter truncated;
  write_varint(truncated, 0x04);
  write_varint(truncated, 10);
  truncated.write_u8(1);
  EXPECT_FALSE(parse_transport_parameters(truncated.view()).has_value());

  // Varint parameter with trailing garbage inside the value.
  util::ByteWriter garbage;
  write_varint(garbage, 0x04);
  write_varint(garbage, 3);
  garbage.write_u8(0x01);
  garbage.write_u8(0xff);
  garbage.write_u8(0xff);
  EXPECT_FALSE(parse_transport_parameters(garbage.view()).has_value());

  // disable_active_migration with a non-empty value.
  util::ByteWriter flag;
  write_varint(flag, 0x0c);
  write_varint(flag, 1);
  flag.write_u8(0);
  EXPECT_FALSE(parse_transport_parameters(flag.view()).has_value());

  // Connection id longer than 20 bytes.
  util::ByteWriter cid;
  write_varint(cid, 0x0f);
  write_varint(cid, 21);
  cid.write_repeated(0xaa, 21);
  EXPECT_FALSE(parse_transport_parameters(cid.view()).has_value());
}

TEST(TransportParams, EmptyInputIsEmptyParams) {
  const auto parsed = parse_transport_parameters({});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->initial_max_data.has_value());
}

TEST(TransportParams, FuzzNeverThrows) {
  util::Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto junk = rng.bytes(rng.uniform(80));
    ASSERT_NO_THROW((void)parse_transport_parameters(junk));
  }
}

TEST(TransportParams, ClientHelloCarriesFullParameterSet) {
  // The ClientHello builder embeds typical_client(); dig the extension
  // out and parse it.
  util::Rng rng(5);
  const auto ch = build_client_hello("tp.example", rng);
  // Scan for the quic_transport_parameters extension (type 0x0039).
  bool found = false;
  for (std::size_t i = 0; i + 4 <= ch.size(); ++i) {
    if (ch[i] == 0x00 && ch[i + 1] == 0x39) {
      const std::size_t len = (ch[i + 2] << 8) | ch[i + 3];
      if (i + 4 + len > ch.size() || len < 20) continue;
      const auto parsed = parse_transport_parameters(
          {ch.data() + i + 4, len});
      if (parsed && parsed->initial_max_data == (1u << 20)) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace quicsand::quic
