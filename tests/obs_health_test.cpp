// Health watchdog: stale-heartbeat state transitions, the idle
// exemption, explicit readiness and the /healthz JSON body — all driven
// by a manual clock, no sleeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "obs/health.hpp"

namespace quicsand::obs {
namespace {

/// Manual microsecond clock shared with the Health instance under test.
struct ManualClock {
  std::shared_ptr<std::uint64_t> now = std::make_shared<std::uint64_t>(0);

  Health::Clock fn() const {
    return [now = now] { return *now; };
  }
  void advance(util::Duration d) {
    *now += static_cast<std::uint64_t>(d.count());
  }
};

TEST(ObsHealth, StaleHeartbeatWalksDegradedThenUnhealthy) {
  ManualClock clock;
  Health health(clock.fn());
  auto& component =
      health.component("stage", 10 * util::kSecond, 60 * util::kSecond);

  // Registration counts as the first heartbeat.
  EXPECT_EQ(health.snapshot().overall, HealthState::kHealthy);

  clock.advance(9 * util::kSecond);
  EXPECT_EQ(health.snapshot().overall, HealthState::kHealthy);

  clock.advance(1 * util::kSecond);  // age == degraded_after
  EXPECT_EQ(health.snapshot().overall, HealthState::kDegraded);

  clock.advance(49 * util::kSecond);  // age == 59 s
  EXPECT_EQ(health.snapshot().overall, HealthState::kDegraded);

  clock.advance(1 * util::kSecond);  // age == unhealthy_after
  EXPECT_EQ(health.snapshot().overall, HealthState::kUnhealthy);

  component.heartbeat();  // recovery is immediate
  EXPECT_EQ(health.snapshot().overall, HealthState::kHealthy);
  EXPECT_EQ(component.beats(), 1u);
}

TEST(ObsHealth, IdleComponentIsExemptFromTheWatchdog) {
  ManualClock clock;
  Health health(clock.fn());
  auto& component = health.component("drained");
  component.set_idle(true);

  clock.advance(10 * util::kMinute);  // far past both thresholds
  const auto snapshot = health.snapshot();
  EXPECT_EQ(snapshot.overall, HealthState::kHealthy);
  ASSERT_EQ(snapshot.components.size(), 1u);
  EXPECT_TRUE(snapshot.components[0].idle);

  // Resuming work re-arms the watchdog.
  component.set_idle(false);
  EXPECT_EQ(health.snapshot().overall, HealthState::kUnhealthy);
}

TEST(ObsHealth, OverallIsTheWorstComponent) {
  ManualClock clock;
  Health health(clock.fn());
  health.component("slow", 1 * util::kSecond, 5 * util::kSecond);
  auto& fresh = health.component("fresh");

  clock.advance(2 * util::kSecond);
  fresh.heartbeat();
  const auto snapshot = health.snapshot();
  EXPECT_EQ(snapshot.overall, HealthState::kDegraded);
  ASSERT_EQ(snapshot.components.size(), 2u);
  EXPECT_EQ(snapshot.components[0].state, HealthState::kDegraded);
  EXPECT_EQ(snapshot.components[1].state, HealthState::kHealthy);
}

TEST(ObsHealth, ReadinessRequiresEveryComponent) {
  Health health;
  EXPECT_TRUE(health.snapshot().ready);  // vacuously ready

  auto& a = health.component("a");
  auto& b = health.component("b");
  EXPECT_FALSE(health.snapshot().ready);  // components start not ready

  a.set_ready(true);
  EXPECT_FALSE(health.snapshot().ready);
  b.set_ready(true);
  EXPECT_TRUE(health.snapshot().ready);
  a.set_ready(false);
  EXPECT_FALSE(health.snapshot().ready);
}

TEST(ObsHealth, ComponentIsGetOrCreateByName) {
  Health health;
  auto& a = health.component("same");
  auto& b = health.component("same", 1 * util::kSecond, 2 * util::kSecond);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(health.snapshot().components.size(), 1u);
}

TEST(ObsHealth, GoldenHealthzJson) {
  ManualClock clock;
  Health health(clock.fn());
  auto& component = health.component("online_detector");
  component.set_ready(true);
  clock.advance(3 * util::kSecond);
  component.heartbeat();
  clock.advance(3 * util::kSecond);

  EXPECT_EQ(health.to_json(),
            "{\"status\": \"healthy\", \"ready\": true, \"components\": "
            "[{\"name\": \"online_detector\", \"state\": \"healthy\", "
            "\"ready\": true, \"idle\": false, \"beats\": 1, "
            "\"age_us\": 3000000}]}");
}

TEST(ObsHealth, StateNames) {
  EXPECT_STREQ(health_state_name(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(health_state_name(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(health_state_name(HealthState::kUnhealthy), "unhealthy");
}

}  // namespace
}  // namespace quicsand::obs
