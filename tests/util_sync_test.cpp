// util::Mutex / LockGuard / UniqueLock / CondVar wrapper semantics plus
// the lock-rank checker. This binary compiles with QUICSAND_LOCK_RANK
// defined (see tests/CMakeLists.txt) so the rank bookkeeping is live:
// the death tests pin the abort message down to both lock names, which
// is the part of the diagnostic that makes a violation actionable.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace quicsand::util {
namespace {

TEST(Mutex, LockGuardProvidesMutualExclusion) {
  Mutex mutex(LockRank::kMetrics, "test_counter");
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        LockGuard lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 40000);
}

TEST(Mutex, TryLockReflectsContention) {
  Mutex mutex(LockRank::kMetrics, "test_trylock");
  ASSERT_TRUE(mutex.try_lock());
  std::thread contender([&] { EXPECT_FALSE(mutex.try_lock()); });
  contender.join();
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(UniqueLock, OwnsLockTracksExplicitLockUnlock) {
  Mutex mutex(LockRank::kMetrics, "test_unique");
  UniqueLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(CondVar, WaitWakesOnNotify) {
  Mutex mutex(LockRank::kMetrics, "test_cv");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    LockGuard lock(mutex);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lock(mutex);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitUntilTimesOut) {
  Mutex mutex(LockRank::kMetrics, "test_cv_deadline");
  CondVar cv;
  UniqueLock lock(mutex);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must come back with timeout, lock held.
  while (true) {
    if (cv.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  EXPECT_TRUE(lock.owns_lock());
}

// --- Lock-rank checker ------------------------------------------------

TEST(LockRank, InRankNestingIsAccepted) {
  Mutex low(LockRank::kEventLog, "rank_low");
  Mutex high(LockRank::kEventSubscription, "rank_high");
  EXPECT_EQ(lock_rank::held_count(), 0);
  {
    LockGuard outer(low);
    EXPECT_EQ(lock_rank::held_count(), 1);
    {
      LockGuard inner(high);
      EXPECT_EQ(lock_rank::held_count(), 2);
    }
    EXPECT_EQ(lock_rank::held_count(), 1);
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, ReacquireAfterReleaseIsAccepted) {
  // Dropping back to zero held locks resets the ceiling: low-after-high
  // is fine as long as they are not held simultaneously.
  Mutex low(LockRank::kOnlineAlert, "rank_reset_low");
  Mutex high(LockRank::kTsdb, "rank_reset_high");
  { LockGuard lock(high); }
  { LockGuard lock(low); }
  { LockGuard lock(high); }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, OutOfRankAcquireAbortsWithBothNames) {
  Mutex high(LockRank::kSamplerState, "sampler_state_like");
  Mutex low(LockRank::kSamplerLifecycle, "sampler_lifecycle_like");
  EXPECT_DEATH(
      {
        LockGuard outer(high);
        LockGuard inner(low);  // rank 400 under rank 410: violation
      },
      "lock-rank violation.*sampler_lifecycle_like.*sampler_state_like");
}

TEST(LockRankDeathTest, EqualRankAcquireAborts) {
  // Same rank is not "strictly greater": two peers at one rank may
  // never nest (that is what distinct ranks are for).
  Mutex a(LockRank::kThreadPool, "peer_a");
  Mutex b(LockRank::kThreadPool, "peer_b");
  EXPECT_DEATH(
      {
        LockGuard outer(a);
        LockGuard inner(b);
      },
      "lock-rank violation.*peer_b.*peer_a");
}

TEST(LockRankDeathTest, TryLockRespectsTheHierarchy) {
  Mutex high(LockRank::kHealth, "try_high");
  Mutex low(LockRank::kEventLog, "try_low");
  EXPECT_DEATH(
      {
        LockGuard outer(high);
        if (low.try_lock()) low.unlock();
      },
      "lock-rank violation.*try_low.*try_high");
}

}  // namespace
}  // namespace quicsand::util
