// Last-mile edge cases across modules: IPv4 options, allocator
// exhaustion, open() safety on mismatched views, and generator window
// clipping.
#include <gtest/gtest.h>

#include "asdb/registry.hpp"
#include "core/classifier.hpp"
#include "core/sessions.hpp"
#include "net/headers.hpp"
#include "quic/initial_aead.hpp"
#include "quic/packets.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand {
namespace {

TEST(EdgeCases, DecodeIpv4WithOptions) {
  // Hand-build an IPv4 header with IHL=6 (one 4-byte option) + UDP.
  util::ByteWriter w;
  w.write_u8(0x46);  // version 4, IHL 6
  w.write_u8(0);
  const std::size_t total = 24 + 8 + 4;
  w.write_u16(static_cast<std::uint16_t>(total));
  w.write_u16(0);
  w.write_u16(0x4000);
  w.write_u8(64);
  w.write_u8(17);  // UDP
  w.write_u16(0);  // checksum (unverified by decode)
  w.write_u32(net::Ipv4Address::from_octets(1, 2, 3, 4).value());
  w.write_u32(net::Ipv4Address::from_octets(44, 0, 0, 1).value());
  w.write_u32(0x01010101);  // option bytes (NOP NOP NOP NOP... any)
  // UDP header + 4-byte payload.
  w.write_u16(1234);
  w.write_u16(443);
  w.write_u16(12);
  w.write_u16(0);
  w.write_u32(0xdeadbeef);
  const auto decoded = net::decode_ipv4(w.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->udp().src_port, 1234);
  EXPECT_EQ(decoded->udp().dst_port, 443);
  ASSERT_EQ(decoded->udp().payload.size(), 4u);
  EXPECT_EQ(decoded->udp().payload[0], 0xde);
}

TEST(EdgeCases, PrefixAllocatorExhaustionThrows) {
  asdb::SyntheticConfig absurd;
  absurd.eyeball_ases = 20000;  // needs far more /16s than the pools hold
  EXPECT_THROW(asdb::AsRegistry::synthetic(absurd, 1), std::runtime_error);
}

TEST(EdgeCases, OpenPacketWithForeignViewFailsSafely) {
  util::Rng rng(1);
  const auto ctx = quic::HandshakeContext::random(1, rng);
  const auto keys = quic::derive_initial_keys(1, ctx.client_dcid,
                                              quic::Perspective::kClient);
  const auto a = quic::build_client_initial(ctx, "a.example", rng,
                                            quic::CryptoFidelity::kFull);
  const auto view_a = quic::parse_long_header(a, 0);
  ASSERT_TRUE(view_a.has_value());
  // Apply view A to a *shorter* buffer: must fail, not crash.
  const std::vector<std::uint8_t> shorter(a.begin(), a.begin() + 100);
  EXPECT_FALSE(
      quic::open_long_header_packet(keys, shorter, *view_a).has_value());
}

TEST(EdgeCases, ClassifierIgnoresQuicOnOtherPorts) {
  util::Rng rng(2);
  core::Classifier classifier({});
  const auto ctx = quic::HandshakeContext::random(1, rng);
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(9, 9, 9, 9);
  ip.dst = net::Ipv4Address::from_octets(44, 0, 0, 1);
  // Perfectly valid QUIC bytes, but on port 8443: the paper's
  // classification is port-based first.
  const auto record = classifier.classify(
      {util::Timestamp{}, net::build_udp(ip, 50000, 8443,
                         quic::build_client_initial(
                             ctx, "x", rng, quic::CryptoFidelity::kFast))});
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->cls, core::TrafficClass::kOther);
}

TEST(EdgeCases, SessionizerHandlesEqualTimestamps) {
  // Two records at the identical microsecond from the same source.
  std::vector<core::PacketRecord> records(2);
  for (auto& record : records) {
    record.timestamp = util::kApril2021Start;
    record.src = net::Ipv4Address(1);
    record.dst = net::Ipv4Address(2);
    record.cls = core::TrafficClass::kQuicRequest;
    record.wire_size = 100;
  }
  const auto sessions = core::build_sessions(records, util::kMinute,
                                             core::quic_request_filter());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].packets.count(), 2u);
  EXPECT_EQ(sessions[0].duration(), util::Duration{});
  EXPECT_DOUBLE_EQ(sessions[0].peak_pps().count(), 2.0 / 60.0);
}

TEST(EdgeCases, ZeroLengthConnectionIdsInHeaders) {
  util::Rng rng(3);
  quic::LongHeader hdr;
  hdr.type = quic::PacketType::kHandshake;
  hdr.version = 1;
  hdr.dcid = quic::ConnectionId();  // zero-length, legal
  hdr.scid = quic::ConnectionId();
  hdr.packet_number = 1;
  hdr.packet_number_length = 2;
  const auto keys = quic::derive_handshake_keys_simulated(
      1, quic::ConnectionId(rng.bytes(8)), quic::Perspective::kServer);
  const auto packet =
      quic::seal_long_header_packet(keys, hdr, rng.bytes(64));
  const auto view = quic::parse_long_header(packet, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->dcid.empty());
  EXPECT_TRUE(view->scid.empty());
  const auto opened = quic::open_long_header_packet(keys, packet, *view);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->payload.size(), 64u);
}

TEST(EdgeCases, RegistryLargerConfigStaysConsistent) {
  asdb::SyntheticConfig big;
  big.eyeball_ases = 800;
  big.transit_ases = 100;
  big.enterprise_ases = 200;
  big.extra_content_ases = 60;
  const auto registry = asdb::AsRegistry::synthetic(big, 3);
  EXPECT_EQ(registry.by_type(asdb::NetworkType::kEyeball).size(), 800u);
  // Every generated AS resolves its own random addresses.
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto ases = registry.by_type(asdb::NetworkType::kEyeball);
    const auto asn = ases[rng.uniform(ases.size())];
    const auto addr = registry.random_address_in(asn, rng);
    const auto* info = registry.lookup(addr);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->asn, asn);
  }
}

}  // namespace
}  // namespace quicsand
