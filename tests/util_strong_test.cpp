// Strong-type algebra tests, including the compile-time rejection matrix.
//
// The rejection matrix uses SFINAE probes: each probe asks whether an
// expression would be well-formed for the given operand types without
// instantiating it, so the *absence* of an operator is pinned by a
// static_assert instead of a commented-out compile error.
#include "util/strong.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "core/units.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace quicsand::util {
namespace {

// ---------------------------------------------------------------------
// SFINAE probes: detect whether an arithmetic expression is well-formed.
// ---------------------------------------------------------------------

template <class A, class B, class = void>
struct CanAdd : std::false_type {};
template <class A, class B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanSubtract : std::false_type {};
template <class A, class B>
struct CanSubtract<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanMultiply : std::false_type {};
template <class A, class B>
struct CanMultiply<
    A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanCompare : std::false_type {};
template <class A, class B>
struct CanCompare<
    A, B, std::void_t<decltype(std::declval<A>() == std::declval<B>())>>
    : std::true_type {};

template <class To, class From, class = void>
struct CanAssign : std::false_type {};
template <class To, class From>
struct CanAssign<To, From,
                 std::void_t<decltype(std::declval<To&>() =
                                          std::declval<From>())>>
    : std::true_type {};

// ---------------------------------------------------------------------
// Compile-fail matrix. Every `false` line here was a legal (and silently
// wrong) expression before the migration.
// ---------------------------------------------------------------------

// Same-axis vector algebra stays available.
static_assert(CanAdd<Duration, Duration>::value);
static_assert(CanSubtract<Duration, Duration>::value);
static_assert(CanMultiply<Duration, int>::value);
static_assert(CanMultiply<int, Duration>::value);
static_assert(CanCompare<Duration, Duration>::value);

// Point algebra: Timestamp only combines with Duration.
static_assert(CanSubtract<Timestamp, Timestamp>::value);
static_assert(CanAdd<Timestamp, Duration>::value);
static_assert(CanAdd<Duration, Timestamp>::value);
static_assert(CanSubtract<Timestamp, Duration>::value);

// Adding two points is meaningless and rejected.
static_assert(!CanAdd<Timestamp, Timestamp>::value);
// Scaling a point is rejected (2 * "April 1st" has no meaning).
static_assert(!CanMultiply<Timestamp, int>::value);
static_assert(!CanMultiply<int, Timestamp>::value);
// Duration - Timestamp (wrong order) is rejected.
static_assert(!CanSubtract<Duration, Timestamp>::value);

// Cross-axis arithmetic is rejected even though both wrap int64.
static_assert(!CanAdd<Duration, MinuteBin>::value);
static_assert(!CanAdd<HourBin, MinuteBin>::value);
static_assert(!CanSubtract<Duration, HourBin>::value);
static_assert(!CanCompare<Duration, MinuteBin>::value);
static_assert(!CanCompare<HourBin, MinuteBin>::value);

// Raw integers no longer leak in or out implicitly.
static_assert(!CanAdd<Duration, int>::value);
static_assert(!CanAdd<Timestamp, int>::value);
static_assert(!CanCompare<Duration, int>::value);
static_assert(!CanCompare<Timestamp, std::int64_t>::value);
static_assert(!CanAssign<Duration, std::int64_t>::value);
static_assert(!CanAssign<std::int64_t, Duration>::value);
static_assert(!std::is_convertible_v<std::int64_t, Duration>);
static_assert(!std::is_convertible_v<Duration, std::int64_t>);
static_assert(!std::is_convertible_v<Duration, bool>);

// Packet-axis types are isolated from the time axis and from each other.
static_assert(CanAdd<core::PacketCount, core::PacketCount>::value);
static_assert(!CanAdd<core::PacketCount, Duration>::value);
static_assert(!CanAdd<core::PacketCount, core::Pps>::value);
static_assert(!CanAssign<core::PacketCount, std::uint64_t>::value);
static_assert(!CanAssign<double, core::Pps>::value);
static_assert(!std::is_convertible_v<core::Pps, double>);

// Byte-order-tagged integers: no arithmetic, no implicit narrowing —
// only the explicit `to_host()` accessor.
static_assert(!CanAdd<NetU16, NetU16>::value);
static_assert(!CanAdd<NetU32, std::uint32_t>::value);
static_assert(!std::is_convertible_v<NetU16, std::uint16_t>);
static_assert(!std::is_convertible_v<NetU32, std::uint32_t>);
static_assert(!CanCompare<NetU16, int>::value);

// Zero overhead: same size/alignment as the raw representation, and
// trivially copyable so spans/vectors of strong values behave like raw.
static_assert(sizeof(Duration) == sizeof(std::int64_t));
static_assert(alignof(Timestamp) == alignof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Duration>);
static_assert(std::is_trivially_copyable_v<core::PacketCount>);

// ---------------------------------------------------------------------
// Runtime behavior.
// ---------------------------------------------------------------------

TEST(Strong, VectorArithmetic) {
  EXPECT_EQ((kMinute + kSecond).count(), 61'000'000);
  EXPECT_EQ((kMinute - kSecond).count(), 59'000'000);
  EXPECT_EQ((-kSecond).count(), -1'000'000);
  EXPECT_EQ((3 * kSecond).count(), 3'000'000);
  EXPECT_EQ((kSecond * 3).count(), 3'000'000);
  EXPECT_EQ((kMinute / 2).count(), 30'000'000);
  EXPECT_EQ((kMinute / kSecond), 60);
  EXPECT_EQ((kMinute % (7 * kSecond)).count(), 4'000'000);
}

TEST(Strong, CompoundAssignment) {
  Duration d = kSecond;
  d += kSecond;
  EXPECT_EQ(d, 2 * kSecond);
  d -= 3 * kSecond;
  EXPECT_EQ(d, -kSecond);
  core::PacketCount packets{};
  ++packets;
  ++packets;
  EXPECT_EQ(packets.count(), 2u);
}

TEST(Strong, PointAlgebra) {
  const Timestamp t0 = kApril2021Start;
  const Timestamp t1 = t0 + kHour;
  EXPECT_EQ(t1 - t0, kHour);
  EXPECT_EQ(t1 - kHour, t0);
  EXPECT_EQ(kHour + t0, t1);
  Timestamp t = t0;
  t += kMinute;
  t -= kSecond;
  EXPECT_EQ(t - t0, kMinute - kSecond);
}

TEST(Strong, DoubleScalingRoundsHalfAwayFromZero) {
  EXPECT_EQ(Duration{10} * 1.25, Duration{13});  // 12.5 rounds away
  EXPECT_EQ(Duration{10} * -1.25, Duration{-13});
  EXPECT_EQ(Duration{10} * 0.5, Duration{5});
  EXPECT_EQ(Duration{9} / 2.0, Duration{5});  // 4.5 rounds away
}

TEST(Strong, StrongCastExactRatios) {
  const auto minutes = strong_cast<MinuteBin>(2 * kMinute, 1,
                                              kMinute.count());
  EXPECT_EQ(minutes, MinuteBin{2});
  const auto micros = strong_cast<Duration>(MinuteBin{3}, kMinute.count());
  EXPECT_EQ(micros, 3 * kMinute);
  EXPECT_THROW(
      strong_cast<MinuteBin>(kMinute + kMicrosecond, 1, kMinute.count()),
      std::domain_error);
}

TEST(Strong, HashSupportsUnorderedContainers) {
  std::unordered_map<Timestamp, int> by_time;
  by_time[kApril2021Start] = 1;
  by_time[kApril2021Start + kSecond] = 2;
  EXPECT_EQ(by_time.at(kApril2021Start), 1);
  EXPECT_EQ(by_time.size(), 2u);
}

TEST(Strong, NetworkOrderTypesRequireExplicitToHost) {
  const NetU16 port{443};
  const NetU32 version{0x00000001};
  EXPECT_EQ(port.to_host(), 443);
  EXPECT_EQ(version.to_host(), 0x00000001u);
}

}  // namespace
}  // namespace quicsand::util
