#include "quic/stateless_reset.hpp"

#include <gtest/gtest.h>

#include "quic/dissector.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

TEST(StatelessReset, TokenIsDeterministicPerKeyAndCid) {
  util::Rng rng(1);
  const auto key = rng.bytes(32);
  StatelessResetter a(key), b(key);
  const auto cid = ConnectionId(rng.bytes(8));
  EXPECT_EQ(a.token_for(cid), b.token_for(cid));
  EXPECT_NE(a.token_for(cid), a.token_for(ConnectionId(rng.bytes(8))));
  StatelessResetter other(rng.bytes(32));
  EXPECT_NE(a.token_for(cid), other.token_for(cid));
}

TEST(StatelessReset, BuildAndDetect) {
  util::Rng rng(2);
  StatelessResetter resetter(rng.bytes(32));
  const auto cid = ConnectionId(rng.bytes(8));
  const auto packet = resetter.build(cid, rng, 48);
  EXPECT_EQ(packet.size(), 48u);
  EXPECT_EQ(packet[0] & 0xc0, 0x40);  // short-header form + fixed bit
  EXPECT_TRUE(resetter.is_reset_for(packet, cid));
  // The wrong connection id does not match.
  EXPECT_FALSE(resetter.is_reset_for(packet, ConnectionId(rng.bytes(8))));
  // Another endpoint's key does not recognize it either.
  StatelessResetter other(rng.bytes(32));
  EXPECT_FALSE(other.is_reset_for(packet, cid));
}

TEST(StatelessReset, LooksLikeAnOrdinaryShortHeaderPacket) {
  // Indistinguishability: the dissector must classify it as a plain
  // short-header packet, exactly like for any 1-RTT traffic.
  util::Rng rng(3);
  StatelessResetter resetter(rng.bytes(32));
  const auto packet = resetter.build(ConnectionId(rng.bytes(8)), rng);
  const auto result = dissect_udp_payload(packet);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kShort);
}

TEST(StatelessReset, RejectsDegenerateArguments) {
  util::Rng rng(4);
  EXPECT_THROW(StatelessResetter resetter({}), std::invalid_argument);
  StatelessResetter resetter(rng.bytes(32));
  EXPECT_THROW((void)resetter.build(ConnectionId(rng.bytes(8)), rng, 20),
               std::invalid_argument);
  // Runt datagrams never match.
  EXPECT_FALSE(resetter.is_reset_for(rng.bytes(10),
                                     ConnectionId(rng.bytes(8))));
}

TEST(StatelessReset, BitFlipInTokenBreaksDetection) {
  util::Rng rng(5);
  StatelessResetter resetter(rng.bytes(32));
  const auto cid = ConnectionId(rng.bytes(8));
  auto packet = resetter.build(cid, rng);
  packet[packet.size() - 1] ^= 0x01;
  EXPECT_FALSE(resetter.is_reset_for(packet, cid));
}

}  // namespace
}  // namespace quicsand::quic
