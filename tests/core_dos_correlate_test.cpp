#include <gtest/gtest.h>

#include "core/correlate.hpp"
#include "core/dos.hpp"

namespace quicsand::core {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

/// Synthetic session: `packets` spread uniformly over `duration`.
Session make_session(net::Ipv4Address source, util::Timestamp start,
                     util::Duration duration, std::uint64_t packets) {
  Session session;
  session.source = source;
  session.start = start;
  session.end = start + duration;
  session.packets = PacketCount{packets};
  const auto minutes = static_cast<std::size_t>(duration / util::kMinute) + 1;
  session.minute_counts.assign(minutes, 0);
  for (std::uint64_t i = 0; i < packets; ++i) {
    session.minute_counts[static_cast<std::size_t>(
        i * minutes / packets)]++;
  }
  return session;
}

net::Ipv4Address victim(int i) {
  return net::Ipv4Address::from_octets(142, 250, 0,
                                       static_cast<std::uint8_t>(i));
}

TEST(DosDetector, AppliesAllThreeThresholds) {
  std::vector<Session> sessions;
  // Attack: 300 packets over 5 minutes -> 1 pps peak.
  sessions.push_back(make_session(victim(1), kT0, 5 * util::kMinute, 300));
  // Too few packets.
  sessions.push_back(make_session(victim(2), kT0, 5 * util::kMinute, 20));
  // Too short.
  sessions.push_back(make_session(victim(3), kT0, 30 * util::kSecond, 300));
  // Too slow: 26 packets over 50 minutes -> ~0.01 pps.
  sessions.push_back(make_session(victim(4), kT0, 50 * util::kMinute, 26));
  const auto attacks = detect_attacks(sessions, {});
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].victim, victim(1));
  EXPECT_EQ(attacks[0].packets.count(), 300u);
  EXPECT_EQ(attacks[0].session_index, 0u);
  EXPECT_GT(attacks[0].peak_pps.count(), 0.5);
}

TEST(DosDetector, ThresholdsAreStrict) {
  std::vector<Session> sessions;
  // Exactly 25 packets (not > 25) must not qualify.
  sessions.push_back(make_session(victim(1), kT0, 5 * util::kMinute, 25));
  EXPECT_TRUE(detect_attacks(sessions, {}).empty());
  sessions.clear();
  // Exactly 60 seconds must not qualify (> 60 required).
  sessions.push_back(make_session(victim(1), kT0, 60 * util::kSecond, 300));
  EXPECT_TRUE(detect_attacks(sessions, {}).empty());
}

TEST(DosDetector, WeightScalesThresholds) {
  std::vector<Session> sessions;
  sessions.push_back(make_session(victim(1), kT0, 5 * util::kMinute, 300));
  // w=10: needs >250 packets, >600 s, >5 pps. 300 pkts/5 min fails.
  EXPECT_TRUE(detect_attacks(sessions, DosThresholds{}.weighted(10)).empty());
  // w=0.1 is more permissive than default.
  sessions.push_back(make_session(victim(2), kT0, 2 * util::kMinute, 15));
  const auto relaxed =
      detect_attacks(sessions, DosThresholds{}.weighted(0.1));
  EXPECT_EQ(relaxed.size(), 2u);
}

TEST(DosDetector, ExcludedSummaryMatchesAppendixBShape) {
  std::vector<Session> sessions;
  sessions.push_back(make_session(victim(1), kT0, 5 * util::kMinute, 300));
  for (int i = 2; i < 12; ++i) {
    sessions.push_back(
        make_session(victim(i), kT0, 7 * util::kSecond, 11));
  }
  const auto summary = summarize_excluded(sessions, {});
  EXPECT_EQ(summary.count, 10u);
  EXPECT_DOUBLE_EQ(summary.median_packets, 11.0);
  EXPECT_DOUBLE_EQ(summary.median_duration_s, 7.0);
  EXPECT_LT(summary.median_peak_pps, 0.5);
}

DetectedAttack attack(net::Ipv4Address v, util::Timestamp start,
                      util::Duration duration) {
  DetectedAttack a;
  a.victim = v;
  a.start = start;
  a.end = start + duration;
  a.packets = PacketCount{100};
  a.peak_pps = Pps{1.0};
  return a;
}

TEST(Correlator, ClassifiesAllThreeRelations) {
  std::vector<DetectedAttack> quic = {
      attack(victim(1), kT0, 10 * util::kMinute),       // concurrent
      attack(victim(2), kT0, 10 * util::kMinute),       // sequential
      attack(victim(3), kT0, 10 * util::kMinute),       // isolated
  };
  std::vector<DetectedAttack> common = {
      attack(victim(1), kT0 + util::kMinute, 30 * util::kMinute),
      attack(victim(2), kT0 + util::kHour, 30 * util::kMinute),
  };
  const auto report = correlate_attacks(quic, common);
  EXPECT_EQ(report.concurrent, 1u);
  EXPECT_EQ(report.sequential, 1u);
  EXPECT_EQ(report.isolated, 1u);
  EXPECT_EQ(report.total(), 3u);
  EXPECT_DOUBLE_EQ(report.share(Relation::kConcurrent), 1.0 / 3);
  ASSERT_EQ(report.per_attack.size(), 3u);
  EXPECT_EQ(report.per_attack[0].relation, Relation::kConcurrent);
  // QUIC attack runs t0..t0+10m, common t0+1m..t0+31m: overlap 9/10.
  EXPECT_NEAR(report.per_attack[0].overlap_share, 0.9, 0.001);
  EXPECT_EQ(report.per_attack[1].relation, Relation::kSequential);
  EXPECT_EQ(report.per_attack[1].gap, 50 * util::kMinute);
}

TEST(Correlator, OneSecondOverlapRule) {
  std::vector<DetectedAttack> quic = {
      attack(victim(1), kT0, util::kMinute)};
  // Ends exactly when the QUIC attack starts: zero overlap.
  std::vector<DetectedAttack> common = {
      attack(victim(1), kT0 - util::kMinute, util::kMinute)};
  auto report = correlate_attacks(quic, common);
  EXPECT_EQ(report.sequential, 1u);
  EXPECT_EQ(report.per_attack[0].gap, util::Duration{});
  // One second of overlap flips it to concurrent.
  common[0].end += util::kSecond;
  report = correlate_attacks(quic, common);
  EXPECT_EQ(report.concurrent, 1u);
}

TEST(Correlator, OverlapUnionAcrossMultipleCommonAttacks) {
  std::vector<DetectedAttack> quic = {
      attack(victim(1), kT0, 10 * util::kMinute)};
  // Two common attacks covering [0,4) and [2,6) minutes: union 6 minutes.
  std::vector<DetectedAttack> common = {
      attack(victim(1), kT0, 4 * util::kMinute),
      attack(victim(1), kT0 + 2 * util::kMinute, 4 * util::kMinute),
  };
  const auto report = correlate_attacks(quic, common);
  ASSERT_EQ(report.concurrent, 1u);
  EXPECT_NEAR(report.per_attack[0].overlap_share, 0.6, 0.001);
}

TEST(Correlator, FullOverlapCapsAtOne) {
  std::vector<DetectedAttack> quic = {
      attack(victim(1), kT0 + util::kMinute, util::kMinute)};
  std::vector<DetectedAttack> common = {
      attack(victim(1), kT0, util::kHour)};
  const auto report = correlate_attacks(quic, common);
  ASSERT_EQ(report.concurrent, 1u);
  EXPECT_DOUBLE_EQ(report.per_attack[0].overlap_share, 1.0);
  const auto shares = report.overlap_shares();
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
}

TEST(Correlator, SequentialGapPicksNearest) {
  std::vector<DetectedAttack> quic = {
      attack(victim(1), kT0 + 10 * util::kHour, util::kMinute)};
  std::vector<DetectedAttack> common = {
      attack(victim(1), kT0, util::kMinute),                  // far before
      attack(victim(1), kT0 + 12 * util::kHour, util::kMinute),  // near after
  };
  const auto report = correlate_attacks(quic, common);
  ASSERT_EQ(report.sequential, 1u);
  EXPECT_EQ(report.per_attack[0].gap,
            (2 * util::kHour) - (util::kMinute));
  const auto gaps = report.gaps_seconds();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_NEAR(gaps[0], util::to_seconds((2 * util::kHour) - (util::kMinute)),
              0.01);
}

TEST(Correlator, EmptyInputs) {
  const auto report = correlate_attacks({}, {});
  EXPECT_EQ(report.total(), 0u);
  EXPECT_DOUBLE_EQ(report.share(Relation::kConcurrent), 0.0);
}

TEST(Correlator, VictimTimelineMergesAndSorts) {
  std::vector<DetectedAttack> quic = {
      attack(victim(1), kT0 + util::kHour, util::kMinute),
      attack(victim(2), kT0, util::kMinute),
      attack(victim(1), kT0 + 3 * util::kHour, util::kMinute),
  };
  std::vector<DetectedAttack> common = {
      attack(victim(1), kT0, 2 * util::kHour)};
  const auto timeline = victim_timeline(victim(1), quic, common);
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_FALSE(timeline[0].is_quic);
  EXPECT_TRUE(timeline[1].is_quic);
  EXPECT_TRUE(timeline[2].is_quic);
  EXPECT_LE(timeline[0].start, timeline[1].start);
}

TEST(Correlator, RelationNames) {
  EXPECT_STREQ(relation_name(Relation::kConcurrent), "concurrent");
  EXPECT_STREQ(relation_name(Relation::kSequential), "sequential");
  EXPECT_STREQ(relation_name(Relation::kIsolated), "isolated");
}

}  // namespace
}  // namespace quicsand::core
