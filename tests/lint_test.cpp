// Fixture tests for the repo lint pass. Each fixture under
// tests/lint_fixtures/ exercises one rule with a known set of expected
// findings; the mixed-units fixture additionally pins the --fix output
// against a golden file. QUICSAND_LINT_FIXTURE_DIR is injected by CMake.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace quicsand::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(QUICSAND_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintResult lint_fixture(const std::string& name) {
  return lint_source(name, read_fixture(name), default_rules());
}

std::vector<std::pair<int, std::string>> lines_and_rules(
    const LintResult& result) {
  std::vector<std::pair<int, std::string>> out;
  for (const Finding& f : result.findings) out.emplace_back(f.line, f.rule);
  return out;
}

using Expected = std::vector<std::pair<int, std::string>>;

TEST(LintFixtures, ParseFunctions) {
  const auto result = lint_fixture("bad_parse.cpp");
  EXPECT_EQ(lines_and_rules(result), (Expected{{6, "parse-functions"},
                                               {11, "parse-functions"},
                                               {15, "parse-functions"}}));
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(LintFixtures, RawMemcpy) {
  const auto result = lint_fixture("bad_memcpy.cpp");
  EXPECT_EQ(lines_and_rules(result),
            (Expected{{7, "raw-memcpy"}, {12, "raw-memcpy"}}));
}

TEST(LintFixtures, NondeterministicSource) {
  const auto result = lint_fixture("bad_nondeterminism.cpp");
  EXPECT_EQ(lines_and_rules(result),
            (Expected{{6, "nondeterministic-source"},
                      {11, "nondeterministic-source"}}));
}

TEST(LintFixtures, MixedUnits) {
  const auto result = lint_fixture("bad_mixed_units.cpp");
  EXPECT_EQ(lines_and_rules(result), (Expected{{8, kRuleMixedUnits},
                                               {12, kRuleMixedUnits}}));
  for (const Finding& f : result.findings) EXPECT_TRUE(f.fixable);
  EXPECT_FALSE(result.fixes.empty());
}

TEST(LintFixtures, MixedUnitsFixMatchesGolden) {
  const std::string source = read_fixture("bad_mixed_units.cpp");
  auto result = lint_source("bad_mixed_units.cpp", source, default_rules());
  const std::string patched = apply_edits(source, std::move(result.fixes));
  EXPECT_EQ(patched, read_fixture("bad_mixed_units.fixed"));
  // The fixed output must lint clean.
  const auto relint =
      lint_source("bad_mixed_units.cpp", patched, default_rules());
  EXPECT_TRUE(relint.findings.empty());
}

TEST(LintFixtures, Int64TimeParam) {
  const auto result = lint_fixture("bad_int64_time_param.cpp");
  EXPECT_EQ(lines_and_rules(result), (Expected{{7, kRuleInt64TimeParam},
                                               {10, kRuleInt64TimeParam}}));
}

TEST(LintFixtures, TimestampDoubleCast) {
  const auto result = lint_fixture("bad_double_cast.cpp");
  EXPECT_EQ(lines_and_rules(result),
            (Expected{{8, kRuleTimestampDoubleCast}}));
}

TEST(LintFixtures, RawStdMutex) {
  const auto result = lint_fixture("bad_raw_mutex.cpp");
  EXPECT_EQ(lines_and_rules(result), (Expected{{2, kRuleRawStdMutex},
                                               {8, kRuleRawStdMutex},
                                               {11, kRuleRawStdMutex}}));
  // The namespace-scope mutex also trips unguarded-mutable-static; the
  // fixture suppresses that one finding inline.
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(LintFixtures, RawStdMutexAllowedInSyncLayer) {
  const std::string source = read_fixture("bad_raw_mutex.cpp");
  const auto result =
      lint_source("src/util/sync.hpp", source, default_rules());
  for (const auto& [line, rule] : lines_and_rules(result)) {
    EXPECT_NE(rule, kRuleRawStdMutex) << "line " << line;
  }
}

TEST(LintFixtures, Layering) {
  // Layering is path-driven: the fixture only violates the DAG when it
  // claims to live in src/obs/, the bottom layer (deps: none).
  const std::string source = read_fixture("bad_layering.cpp");
  const auto result =
      lint_source("src/obs/bad_layering.cpp", source, default_rules());
  EXPECT_EQ(lines_and_rules(result),
            (Expected{{8, kRuleLayering}, {9, kRuleLayering}}));
}

TEST(LintFixtures, LayeringAllowsDeclaredEdges) {
  // The same includes are fine from src/core/, whose edge covers both
  // net and obs — and from outside src/ entirely (tests, tools).
  const std::string source = read_fixture("bad_layering.cpp");
  const auto from_core =
      lint_source("src/core/bad_layering.cpp", source, default_rules());
  EXPECT_TRUE(from_core.findings.empty());
  const auto from_tests = lint_fixture("bad_layering.cpp");
  EXPECT_TRUE(from_tests.findings.empty());
}

TEST(LintFixtures, UnguardedMutableStatic) {
  const auto result = lint_fixture("bad_mutable_static.cpp");
  EXPECT_EQ(lines_and_rules(result), (Expected{{9, kRuleMutableStatic},
                                               {11, kRuleMutableStatic}}));
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(LintFixtures, SuppressionsSilenceFindings) {
  const auto result = lint_fixture("suppressed.cpp");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed, 3u);
  // A suppressed fixable finding must not leave edits behind.
  EXPECT_TRUE(result.fixes.empty());
}

TEST(LintFixtures, CleanFileHasNoFindings) {
  const auto result = lint_fixture("clean.cpp");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(LintFixtures, AllowlistedPathsAreExempt) {
  const std::string source = read_fixture("bad_parse.cpp");
  const auto result =
      lint_source("src/util/parse.cpp", source, default_rules());
  EXPECT_TRUE(result.findings.empty());
}

TEST(LintUnit, ApplyEditsSkipsOverlapsAndOutOfRange) {
  const std::string source = "abcdef";
  std::vector<TextEdit> edits = {
      {2, 0, "("},   // insert
      {3, 2, "YZ"},  // replace "de"
      {4, 1, "!"},   // overlaps the previous replacement: dropped
      {99, 0, "?"},  // out of range: dropped
  };
  EXPECT_EQ(apply_edits(source, std::move(edits)), "ab(cYZf");
}

TEST(LintUnit, JsonReportShape) {
  const std::vector<Finding> findings = {
      {"a.cpp", 3, "raw-memcpy", "msg \"quoted\"", false}};
  const std::string json = findings_to_json(findings, 2, 1);
  EXPECT_NE(json.find("\"checked_files\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"raw-memcpy\""), std::string::npos);
  EXPECT_NE(json.find("msg \\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace quicsand::lint
