// Unit tests for the ground-truth scoring helpers (precision/recall
// matching rules); scenario-level floors live in
// diff_online_offline_test.cpp.
#include "telescope/scoring.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace quicsand::telescope {
namespace {

constexpr util::Timestamp kT0 = util::kApril2021Start;

PlannedAttack planned(std::uint32_t victim, util::Timestamp start,
                      util::Duration duration, double peak_pps = 2.0) {
  PlannedAttack attack;
  attack.protocol = AttackProtocol::kQuic;
  attack.victim = net::Ipv4Address(victim);
  attack.start = start;
  attack.duration = duration;
  attack.peak_pps = peak_pps;
  return attack;
}

core::DetectedAttack detected(std::uint32_t victim, util::Timestamp start,
                              util::Timestamp end) {
  core::DetectedAttack attack;
  attack.victim = net::Ipv4Address(victim);
  attack.start = start;
  attack.end = end;
  attack.packets = core::PacketCount{100};
  attack.peak_pps = core::Pps{2.0};
  return attack;
}

std::vector<const PlannedAttack*> pointers(
    const std::vector<PlannedAttack>& attacks) {
  std::vector<const PlannedAttack*> out;
  for (const auto& a : attacks) out.push_back(&a);
  return out;
}

TEST(Scoring, PerfectMatch) {
  const std::vector<PlannedAttack> plan = {
      planned(0x01010101, kT0, 10 * util::kMinute),
      planned(0x02020202, kT0 + util::kHour, 20 * util::kMinute),
  };
  const std::vector<core::DetectedAttack> found = {
      detected(0x01010101, kT0, kT0 + 10 * util::kMinute),
      detected(0x02020202, kT0 + util::kHour,
               kT0 + (util::kHour) + (20 * util::kMinute)),
  };
  const auto stats = score_detections(found, pointers(plan));
  EXPECT_EQ(stats.matched_detected, 2u);
  EXPECT_EQ(stats.matched_planned, 2u);
  EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 1.0);
}

TEST(Scoring, VictimMismatchNeverMatches) {
  const std::vector<PlannedAttack> plan = {
      planned(0x01010101, kT0, 10 * util::kMinute)};
  const std::vector<core::DetectedAttack> found = {
      detected(0x99999999, kT0, kT0 + 10 * util::kMinute)};
  const auto stats = score_detections(found, pointers(plan));
  EXPECT_DOUBLE_EQ(stats.precision(), 0.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 0.0);
}

TEST(Scoring, SlackToleratesSessionizationRounding) {
  const std::vector<PlannedAttack> plan = {
      planned(0x01010101, kT0, 10 * util::kMinute)};
  // Detection starts 30 s after the planned window ends: inside the
  // default 1-minute slack, outside a zero slack.
  const std::vector<core::DetectedAttack> found = {detected(
      0x01010101, kT0 + (10 * util::kMinute) + (30 * util::kSecond),
      kT0 + 20 * util::kMinute)};
  EXPECT_DOUBLE_EQ(
      score_detections(found, pointers(plan)).precision(), 1.0);
  EXPECT_DOUBLE_EQ(
      score_detections(found, pointers(plan), util::Duration{0}).precision(),
      0.0);
}

TEST(Scoring, SplitDetectionsCountOncePerPlan) {
  // One long planned attack detected as two sessions: recall is full,
  // precision too (both sessions trace to the plan).
  const std::vector<PlannedAttack> plan = {
      planned(0x01010101, kT0, util::kHour)};
  const std::vector<core::DetectedAttack> found = {
      detected(0x01010101, kT0, kT0 + 20 * util::kMinute),
      detected(0x01010101, kT0 + 40 * util::kMinute, kT0 + util::kHour),
  };
  const auto stats = score_detections(found, pointers(plan));
  EXPECT_EQ(stats.matched_detected, 2u);
  EXPECT_EQ(stats.matched_planned, 1u);
  EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 1.0);
}

TEST(Scoring, EmptyInputsScorePerfect) {
  const auto stats = score_detections({}, {});
  EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 1.0);
}

TEST(Scoring, ComfortablyDetectableRequiresMargin) {
  const core::DosThresholds thresholds;  // 25 pkts, 60 s, 0.5 pps
  EXPECT_TRUE(comfortably_detectable(
      planned(1, kT0, 4 * util::kMinute, /*peak_pps=*/1.5), thresholds));
  // 1.2x the rate floor: detectable, but not comfortably.
  EXPECT_FALSE(comfortably_detectable(
      planned(1, kT0, 4 * util::kMinute, /*peak_pps=*/0.6), thresholds));
  // Barely past the duration floor.
  EXPECT_FALSE(comfortably_detectable(
      planned(1, kT0, 90 * util::kSecond, /*peak_pps=*/1.5), thresholds));
}

}  // namespace
}  // namespace quicsand::telescope
