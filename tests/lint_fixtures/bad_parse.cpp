// Fixture: libc parsers must go through util::parse_* wrappers.
#include <cstdlib>
#include <cstdio>

int parse_port(const char* text) {
  return atoi(text);  // finding: parse-functions
}

long parse_offset(const char* text) {
  char* end = nullptr;
  return strtol(text, &end, 10);  // finding: parse-functions
}

int scan_pair(const char* text, int* a, int* b) {
  return sscanf(text, "%d %d", a, b);  // finding: parse-functions
}
