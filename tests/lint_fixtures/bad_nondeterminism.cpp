// Fixture: nondeterministic sources are banned everywhere.
#include <chrono>
#include <cstdlib>

int roll_die() {
  return std::rand() % 6;  // finding: nondeterministic-source
}

long long now_us() {
  // finding: nondeterministic-source (mention-form, no call required)
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}
