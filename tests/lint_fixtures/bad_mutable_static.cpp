// Fixture: mutable namespace-scope state, which the thread-safety
// analysis cannot see. Only the two plain globals should fire; the
// const/thread_local/extern/function/member-definition cases are all
// legitimate.
#include <atomic>

namespace fixture {

int g_count = 0;

std::atomic<bool> g_flag{false};

const int kLimit = 4;
constexpr double kRatio = 0.5;
thread_local int tls_scratch = 0;
extern int g_declared_elsewhere;

int helper() { return g_count; }

struct Widget {
  static int live_count_;
};

int Widget::live_count_ = 0;

}  // namespace fixture
