// Fixture: every violation here carries a lint:allow marker, so the
// file must report zero findings and count each one as suppressed.
#include <cstdlib>
#include <cstring>

int legacy_parse(const char* text) {
  return atoi(text);  // lint:allow(parse-functions)
}

void legacy_copy(unsigned char* dst, const unsigned char* src) {
  // lint:allow(raw-memcpy): interop shim measured hot; bounds checked above
  std::memcpy(dst, src, 16);
}

int legacy_roll() {
  // lint:allow(nondeterministic-source)
  return std::rand() % 6;
}
