// Fixture: raw memcpy outside util::bytes / crypto is banned.
#include <cstdint>
#include <cstring>

std::uint32_t load_u32(const unsigned char* data) {
  std::uint32_t value = 0;
  std::memcpy(&value, data, sizeof(value));  // finding: raw-memcpy
  return value;
}

void shift_left(unsigned char* data, std::size_t n) {
  std::memmove(data, data + 1, n - 1);  // finding: raw-memcpy
}
