// Fixture: casting timestamps to double loses microsecond precision.
#include "util/time.hpp"

namespace quicsand {

double as_seconds(util::Timestamp timestamp) {
  // finding: timestamp-double-cast
  return static_cast<double>(timestamp.count()) / 1e6;
}

double plain(std::int64_t packets) {
  // No finding: nothing timestamp-like inside the cast.
  return static_cast<double>(packets);
}

}  // namespace quicsand
