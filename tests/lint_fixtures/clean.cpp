// Fixture: idiomatic code produces no findings.
#include "util/parse.hpp"
#include "util/time.hpp"

namespace quicsand {

util::Duration timeout() { return (2 * util::kMinute) + (30 * util::kSecond); }

std::int64_t parse_count(std::string_view text) {
  return util::parse_i64(text).value_or(0);
}

void step(util::Timestamp now, util::Duration budget);

}  // namespace quicsand
