// Fixture: layering violations. The lint test feeds this file through
// lint_source() under the synthetic path "src/obs/bad_layering.cpp";
// obs sits at the bottom of the module DAG and may only include itself
// and util, so the core/ and net/ includes below are violations.
#include "obs/metrics.hpp"
#include "util/sync.hpp"

#include "core/parallel_pipeline.hpp"
#include "net/record.hpp"

namespace fixture {

int use_everything() { return 0; }

}  // namespace fixture
