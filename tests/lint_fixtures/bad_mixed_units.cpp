// Fixture: mixed time-unit literals in one additive chain must be
// parenthesized per term. Every finding here is mechanically fixable.
#include "util/time.hpp"

namespace quicsand {

util::Duration grace() {
  return 2 * util::kMinute + 30 * util::kSecond;  // finding (fixable)
}

util::Duration window(int hours) {
  const util::Duration pad = hours * util::kHour + 5 * util::kMinute;  // finding
  return pad;
}

util::Duration fine() {
  // Already parenthesized: no finding.
  return (2 * util::kMinute) + (30 * util::kSecond);
}

std::int64_t ratio() {
  // Single operand with two units binds unambiguously: no finding.
  return util::kMinute / util::kSecond;
}

}  // namespace quicsand
