// Fixture: raw std synchronization primitives outside util/sync.hpp.
#include <mutex>

#include <vector>

namespace fixture {

std::mutex g_lock;  // lint:allow(unguarded-mutable-static)

int protected_read(std::vector<int>& values) {
  std::lock_guard guard(g_lock);
  return values.empty() ? 0 : values.front();
}

}  // namespace fixture
