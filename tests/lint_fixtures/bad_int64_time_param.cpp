// Fixture: time-valued parameters must use the strong types.
#include <cstdint>

namespace quicsand {

// finding: naked-int64-time-param (suffix `_us`)
void advance(std::int64_t start_us, int packets);

// finding: naked-int64-time-param (exact name `deadline`)
bool expired(std::int64_t deadline);

// No finding: `count` does not look time-valued.
void reserve(std::int64_t count);

}  // namespace quicsand
