// Golden figure outputs: the exact quantities behind fig02-fig13 for one
// pinned scenario (seed 4242, 2 days, /20 telescope). Any change in the
// generator, classifier, sessionizer, detector or correlator shows up
// here as a diff — deliberate changes update the constants.
//
// Registered under the `golden` ctest label (not tier1): pins are exact
// by design, so they gate refactors, not the regular suite. The test
// prints every quantity as "GOLDEN <name> <value>"; to regenerate after
// an intended behavior change, run the binary and copy the values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/correlate.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/victims.hpp"
#include "net/record_batch.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"

namespace quicsand::core {
namespace {

std::uint64_t sum(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

void print_golden(const char* name, double value) {
  std::printf("GOLDEN %s %.17g\n", name, value);
}
void print_golden(const char* name, std::uint64_t value) {
  std::printf("GOLDEN %s %llu\n", name,
              static_cast<unsigned long long>(value));
}

class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new asdb::AsRegistry(asdb::AsRegistry::synthetic({}, 4242));
    deployment_ = new scanner::Deployment(
        scanner::Deployment::synthetic(*registry_, {}, 4242));
    auto scenario = telescope::ScenarioConfig::april2021(2, 4242);
    scenario.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
    scenario.attacks.quic_attacks_per_day = 40;
    scenario.attacks.common_attacks_per_day = 150;
    scenario.botnet.sessions_per_day = 300;
    scenario.misconfig.sessions_per_day = 200;
    telescope::TelescopeGenerator generator(scenario, *registry_,
                                            *deployment_);

    PipelineOptions options;
    options.window_start = scenario.start;
    options.days = scenario.days;
    pipeline_ = new Pipeline(options);
    online_ = new OnlineDetector({});
    online_attacks_ = new std::vector<DetectedAttack>();
    online_->set_on_attack([](const DetectedAttack& a) {
      online_attacks_->push_back(a);
    });
    // The figure stream is produced through the batched path — the same
    // one the benches and the parallel pipeline use — so every pin below
    // also pins batched generation. Per-record next() stays covered by
    // tests/telescope_batch_diff_test.cpp, which proves it bit-identical
    // to this stream.
    Classifier classifier({});
    net::RecordBatch batch;
    while (generator.next_batch(batch) > 0) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto view = batch.view(i);
        pipeline_->consume(view.timestamp, view.data);
        if (const auto record =
                classifier.classify(view.timestamp, view.data)) {
          online_->consume(*record);
        }
      }
    }
    online_->finish();
    analysis_ = new Pipeline::AttackAnalysis(pipeline_->analyze_attacks());
  }

  static void TearDownTestSuite() {
    delete analysis_;
    delete online_attacks_;
    delete online_;
    delete pipeline_;
    delete deployment_;
    delete registry_;
  }

  static asdb::AsRegistry* registry_;
  static scanner::Deployment* deployment_;
  static Pipeline* pipeline_;
  static OnlineDetector* online_;
  static std::vector<DetectedAttack>* online_attacks_;
  static Pipeline::AttackAnalysis* analysis_;
};

asdb::AsRegistry* GoldenFigures::registry_ = nullptr;
scanner::Deployment* GoldenFigures::deployment_ = nullptr;
Pipeline* GoldenFigures::pipeline_ = nullptr;
OnlineDetector* GoldenFigures::online_ = nullptr;
std::vector<DetectedAttack>* GoldenFigures::online_attacks_ = nullptr;
Pipeline::AttackAnalysis* GoldenFigures::analysis_ = nullptr;

TEST_F(GoldenFigures, Fig02Fig03HourlyTotals) {
  const auto& hourly = pipeline_->hourly();
  print_golden("research_quic", sum(hourly.research_quic));
  print_golden("other_quic", sum(hourly.other_quic));
  print_golden("quic_requests", sum(hourly.quic_requests));
  print_golden("quic_responses", sum(hourly.quic_responses));
  EXPECT_EQ(sum(hourly.research_quic), 0u);
  EXPECT_EQ(sum(hourly.other_quic), 54581u);
  EXPECT_EQ(sum(hourly.quic_requests), 6458u);
  EXPECT_EQ(sum(hourly.quic_responses), 48123u);
}

TEST_F(GoldenFigures, Fig04TimeoutKnee) {
  const util::Duration timeouts[] = {util::kMinute, 5 * util::kMinute,
                                     util::kHour};
  const auto sweep = pipeline_->session_timeout_sweep(timeouts);
  ASSERT_EQ(sweep.size(), 3u);
  print_golden("sessions_1min", sweep[0].second);
  print_golden("sessions_5min", sweep[1].second);
  print_golden("sessions_1h", sweep[2].second);
  EXPECT_EQ(sweep[0].second, 2155u);
  EXPECT_EQ(sweep[1].second, 1073u);
  EXPECT_EQ(sweep[2].second, 1068u);
}

TEST_F(GoldenFigures, Fig06Fig09Victims) {
  const auto report = analyze_victims(analysis_->quic_attacks, *registry_,
                                      *deployment_);
  print_golden("quic_attacks", std::uint64_t{analysis_->quic_attacks.size()});
  print_golden("victims", std::uint64_t{report.victims.size()});
  const auto max_attacks =
      report.victims.empty() ? 0u : report.victims.front().attack_count;
  print_golden("max_attacks_per_victim", std::uint64_t{max_attacks});
  print_golden("known_server_share", report.known_server_share());
  EXPECT_EQ(analysis_->quic_attacks.size(), 61u);
  EXPECT_EQ(report.victims.size(), 36u);
  EXPECT_EQ(max_attacks, 4u);
  EXPECT_DOUBLE_EQ(report.known_server_share(), 0.98360655737704916);
}

TEST_F(GoldenFigures, Fig07DurationIntensityMedians) {
  std::vector<double> durations, peaks;
  for (const auto& attack : analysis_->quic_attacks) {
    durations.push_back(util::to_seconds(attack.duration()));
    peaks.push_back(attack.peak_pps.count());
  }
  ASSERT_FALSE(durations.empty());
  std::sort(durations.begin(), durations.end());
  std::sort(peaks.begin(), peaks.end());
  const auto median = [](const std::vector<double>& v) {
    return v[v.size() / 2];
  };
  print_golden("median_duration_s", median(durations));
  print_golden("median_peak_pps", median(peaks));
  EXPECT_DOUBLE_EQ(median(durations), 346.44087100000002);
  EXPECT_DOUBLE_EQ(median(peaks), 1.2333333333333334);
}

TEST_F(GoldenFigures, Fig08Fig12Fig13MultiVector) {
  const auto report = correlate_attacks(analysis_->quic_attacks,
                                        analysis_->common_attacks);
  print_golden("concurrent", report.concurrent);
  print_golden("sequential", report.sequential);
  print_golden("isolated", report.isolated);
  print_golden("common_attacks",
               std::uint64_t{analysis_->common_attacks.size()});
  EXPECT_EQ(report.concurrent, 31u);
  EXPECT_EQ(report.sequential, 27u);
  EXPECT_EQ(report.isolated, 3u);
  EXPECT_EQ(analysis_->common_attacks.size(), 284u);
}

TEST_F(GoldenFigures, Fig10ThresholdSweep) {
  const DosThresholds base;
  const double weights[] = {0.5, 1.0, 2.0};
  std::uint64_t counts[3] = {};
  for (int i = 0; i < 3; ++i) {
    counts[i] = pipeline_->analyze_attacks(base.weighted(weights[i]))
                    .quic_attacks.size();
  }
  print_golden("attacks_w05", counts[0]);
  print_golden("attacks_w10", counts[1]);
  print_golden("attacks_w20", counts[2]);
  EXPECT_EQ(counts[0], 77u);
  EXPECT_EQ(counts[1], 61u);
  EXPECT_EQ(counts[2], 39u);
  // Monotonic: stricter thresholds admit fewer sessions.
  EXPECT_GE(counts[0], counts[1]);
  EXPECT_GE(counts[1], counts[2]);
}

TEST_F(GoldenFigures, OnlineDetectorGoldenCounters) {
  print_golden("online_alerts", online_->alerts_fired());
  print_golden("online_attacks", online_->attacks_closed());
  EXPECT_EQ(online_->alerts_fired(), 61u);
  EXPECT_EQ(online_->attacks_closed(), 61u);
  EXPECT_EQ(online_attacks_->size(), analysis_->quic_attacks.size());
}

}  // namespace
}  // namespace quicsand::core
