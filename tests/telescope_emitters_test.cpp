// Unit tests for the individual packet emitters: wire-level invariants
// of the traffic each one produces.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/classifier.hpp"
#include "net/headers.hpp"
#include "quic/dissector.hpp"
#include "telescope/emitters.hpp"

namespace quicsand::telescope {
namespace {

ScenarioConfig tiny_scenario() {
  auto config = ScenarioConfig::april2021(1, 3);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 24};
  return config;
}

PlannedAttack quic_attack(const ScenarioConfig& config,
                          std::uint32_t version = 0xff00001d) {
  PlannedAttack attack;
  attack.protocol = AttackProtocol::kQuic;
  attack.victim = net::Ipv4Address::from_octets(142, 250, 7, 7);
  attack.quic_version = version;
  attack.start = config.start + util::kMinute;
  attack.duration = 5 * util::kMinute;
  attack.peak_pps = 2.0;
  return attack;
}

TEST(FlightProfileTest, MvfstHeavierThanIetf) {
  const auto mvfst = flight_profile(0xfaceb002);
  const auto ietf = flight_profile(0xff00001d);
  EXPECT_GT(mvfst.mean_datagrams, ietf.mean_datagrams);
  EXPECT_GT(mvfst.retx1, ietf.retx1);
  // Means are consistent with the probabilities.
  for (const auto& p : {mvfst, ietf}) {
    EXPECT_NEAR(p.mean_datagrams,
                2 + p.retx1 * (1 + p.retx2) + 2 * p.pings + p.reset, 1e-9);
  }
}

TEST(QuicBackscatterEmitterTest, WireInvariants) {
  const auto config = tiny_scenario();
  const auto attack = quic_attack(config);
  QuicBackscatterEmitter emitter(config, attack, 99);
  std::uint64_t packets = 0;
  util::Timestamp last{};
  std::set<std::uint32_t> clients;
  std::set<std::uint16_t> ports;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ip.src, attack.victim);     // victim responds
    EXPECT_EQ(decoded->udp().src_port, 443);       // from the service port
    EXPECT_TRUE(config.telescope.contains(decoded->ip.dst));
    EXPECT_GE(packet->timestamp, last);
    last = packet->timestamp;
    EXPECT_GE(packet->timestamp, attack.start);
    clients.insert(decoded->ip.dst.value());
    ports.insert(decoded->udp().dst_port);
    ++packets;
  }
  EXPECT_GT(packets, 100u);
  // Figure 9's shape: few spoofed client IPs, many randomized ports.
  EXPECT_LE(clients.size(), 19u);
  EXPECT_GT(ports.size(), clients.size());
}

TEST(QuicBackscatterEmitterTest, PacketsCarryTheAttackVersion) {
  const auto config = tiny_scenario();
  const auto attack = quic_attack(config, 0xfaceb002);
  QuicBackscatterEmitter emitter(config, attack, 5);
  std::map<std::uint32_t, int> versions;
  int checked = 0;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    const auto result = quic::dissect_udp_payload(decoded->udp().payload);
    ASSERT_TRUE(result.is_quic) << result.reject_reason;
    for (const auto& pkt : result.packets) {
      if (pkt.version != 0) ++versions[pkt.version];
    }
    if (++checked > 300) break;
  }
  // All versioned packets carry mvfst-draft-27 (VN lists it first).
  ASSERT_FALSE(versions.empty());
  EXPECT_GT(versions[0xfaceb002], 0);
}

TEST(QuicBackscatterEmitterTest, BudgetBoundsRunawayAttacks) {
  auto config = tiny_scenario();
  auto attack = quic_attack(config);
  attack.peak_pps = 100.0;                  // absurd rate
  attack.duration = 20 * util::kHour;       // absurd length
  QuicBackscatterEmitter emitter(config, attack, 7);
  std::uint64_t packets = 0;
  while (emitter.next()) ++packets;
  EXPECT_LE(packets, 60000u);
}

TEST(CommonBackscatterEmitterTest, TcpSynAckBursts) {
  const auto config = tiny_scenario();
  PlannedAttack attack;
  attack.protocol = AttackProtocol::kTcp;
  attack.victim = net::Ipv4Address::from_octets(98, 0, 0, 1);
  attack.start = config.start;
  attack.duration = 3 * util::kMinute;
  attack.peak_pps = 2.0;
  CommonBackscatterEmitter emitter(config, attack, 11);
  std::uint64_t packets = 0;
  std::map<std::pair<std::uint32_t, std::uint16_t>, int> per_connection;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_TRUE(decoded->is_tcp());
    EXPECT_EQ(decoded->tcp().flags,
              net::TcpFlags::kSyn | net::TcpFlags::kAck);
    EXPECT_TRUE(decoded->tcp().src_port == 80 ||
                decoded->tcp().src_port == 443);
    ++per_connection[{decoded->ip.dst.value(), decoded->tcp().dst_port}];
    ++packets;
  }
  EXPECT_GT(packets, 100u);
  // SYN-ACK retransmission bursts: 3-5 per spoofed connection.
  for (const auto& [connection, count] : per_connection) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 5);
  }
}

TEST(CommonBackscatterEmitterTest, IcmpMixIncludesQuotedUnreachables) {
  const auto config = tiny_scenario();
  PlannedAttack attack;
  attack.protocol = AttackProtocol::kIcmp;
  attack.victim = net::Ipv4Address::from_octets(98, 0, 0, 2);
  attack.start = config.start;
  attack.duration = 10 * util::kMinute;
  attack.peak_pps = 3.0;
  CommonBackscatterEmitter emitter(config, attack, 13);
  int echo_replies = 0, unreachables = 0;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_TRUE(decoded->is_icmp());
    if (decoded->icmp().type == 0) {
      ++echo_replies;
    } else if (decoded->icmp().type == 3) {
      ++unreachables;
      const auto quote = net::parse_icmp_quote(decoded->icmp().payload);
      ASSERT_TRUE(quote.has_value());
      // The quote shows the spoofed probe: telescope address -> victim.
      EXPECT_TRUE(config.telescope.contains(quote->original_src));
      EXPECT_EQ(quote->original_dst, attack.victim);
      EXPECT_EQ(quote->dst_port, 443);
    }
  }
  EXPECT_GT(echo_replies, 20);
  EXPECT_GT(unreachables, 5);
}

TEST(MisconfigEmitterTest, IetfSessionsAreValidQuic) {
  const auto config = tiny_scenario();
  MisconfigEmitter emitter(config, net::Ipv4Address::from_octets(151, 101, 1, 1),
                           1, config.start, 11, 17);
  std::uint64_t packets = 0;
  std::set<std::uint32_t> targets;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->udp().src_port, 443);
    targets.insert(decoded->ip.dst.value());
    const auto result = quic::dissect_udp_payload(decoded->udp().payload);
    EXPECT_TRUE(result.is_quic) << result.reject_reason;
    ++packets;
  }
  EXPECT_EQ(packets, 11u);
  EXPECT_EQ(targets.size(), 1u);  // one confused peer, one stale address
}

TEST(MisconfigEmitterTest, GquicSessionsDissectAsGquic) {
  const auto config = tiny_scenario();
  MisconfigEmitter emitter(config, net::Ipv4Address::from_octets(151, 101, 1, 2),
                           0x51303530, config.start, 6, 19);
  std::uint64_t gquic = 0;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    const auto result = quic::dissect_udp_payload(decoded->udp().payload);
    ASSERT_TRUE(result.is_quic) << result.reject_reason;
    if (result.packets[0].kind == quic::QuicPacketKind::kGquic) ++gquic;
  }
  EXPECT_EQ(gquic, 6u);
}

TEST(ResearchScanEmitterTest, TemplatePatchingKeepsPacketsValid) {
  auto config = tiny_scenario();
  config.tum.passes_per_day = 1.0;
  const net::Ipv4Prefix source{net::Ipv4Address::from_octets(138, 246, 0, 0),
                               16};
  ResearchScanEmitter emitter(config, config.tum, source, 23);
  std::set<std::uint64_t> dcids;
  std::uint64_t packets = 0;
  while (auto packet = emitter.next()) {
    const auto decoded = net::decode_ipv4(packet->data);
    ASSERT_TRUE(decoded.has_value());
    // IP checksum is patched per packet; UDP checksum 0 means "none".
    EXPECT_TRUE(net::verify_checksums(packet->data));
    const auto result = quic::dissect_udp_payload(decoded->udp().payload);
    ASSERT_TRUE(result.is_quic);
    dcids.insert(result.packets[0].dcid.hash());
    ++packets;
  }
  EXPECT_EQ(packets, config.telescope.size());
  // Every probe carries a fresh DCID.
  EXPECT_EQ(dcids.size(), packets);
}

}  // namespace
}  // namespace quicsand::telescope
