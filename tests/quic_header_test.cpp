#include "quic/header.hpp"

#include <gtest/gtest.h>

#include "quic/varint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

using util::from_hex_strict;

ConnectionId cid(const char* hex) {
  return ConnectionId(from_hex_strict(hex));
}

TEST(ConnectionIdTest, BasicProperties) {
  const auto empty = ConnectionId();
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);

  const auto a = cid("8394c8f03e515708");
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.to_hex(), "8394c8f03e515708");
  EXPECT_EQ(a, cid("8394c8f03e515708"));
  EXPECT_NE(a, cid("8394c8f03e515709"));
  EXPECT_NE(a, cid("8394c8f03e5157"));
}

TEST(ConnectionIdTest, RejectsOversized) {
  const std::vector<std::uint8_t> too_long(21, 0);
  EXPECT_THROW(ConnectionId id(too_long), std::invalid_argument);
  const std::vector<std::uint8_t> max(20, 0xab);
  EXPECT_NO_THROW(ConnectionId id(max));
}

TEST(ConnectionIdTest, HashAndOrdering) {
  const auto a = cid("01");
  const auto b = cid("02");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_LT(a, b);
  EXPECT_LT(cid("01"), cid("0100"));  // prefix orders first
}

LongHeader sample_header(PacketType type = PacketType::kInitial) {
  LongHeader hdr;
  hdr.type = type;
  hdr.version = 1;
  hdr.dcid = cid("8394c8f03e515708");
  hdr.scid = cid("f0e1d2c3");
  hdr.packet_number = 0x1234;
  hdr.packet_number_length = 4;
  return hdr;
}

TEST(EncodeLongHeader, LayoutAndOffsets) {
  const auto hdr = sample_header();
  const auto enc = encode_long_header(hdr);
  // first byte: 0b1100_0011 = long | fixed | initial | pn_len-1=3
  EXPECT_EQ(enc.bytes[0], 0xc3);
  // version
  EXPECT_EQ(enc.bytes[1], 0x00);
  EXPECT_EQ(enc.bytes[4], 0x01);
  // dcid_len
  EXPECT_EQ(enc.bytes[5], 8);
  // token length varint (0) follows cids
  const std::size_t token_len_offset = 1 + 4 + 1 + 8 + 1 + 4;
  EXPECT_EQ(enc.bytes[token_len_offset], 0x00);
  EXPECT_EQ(enc.length_offset, token_len_offset + 1);
  EXPECT_EQ(enc.pn_offset, enc.length_offset + 2);
  EXPECT_EQ(enc.bytes.size(), enc.pn_offset + 4);
  // pn encoded big-endian
  EXPECT_EQ(enc.bytes[enc.pn_offset + 2], 0x12);
  EXPECT_EQ(enc.bytes[enc.pn_offset + 3], 0x34);
}

TEST(EncodeLongHeader, HandshakeHasNoToken) {
  const auto enc = encode_long_header(sample_header(PacketType::kHandshake));
  EXPECT_EQ((enc.bytes[0] >> 4) & 3, 2);
  // length field directly after scid
  EXPECT_EQ(enc.length_offset, 1u + 4 + 1 + 8 + 1 + 4);
}

TEST(EncodeLongHeader, TokenIsEncoded) {
  auto hdr = sample_header();
  hdr.token = {0xaa, 0xbb, 0xcc};
  const auto enc = encode_long_header(hdr);
  const std::size_t token_len_offset = 1 + 4 + 1 + 8 + 1 + 4;
  EXPECT_EQ(enc.bytes[token_len_offset], 3);
  EXPECT_EQ(enc.bytes[token_len_offset + 1], 0xaa);
}

TEST(EncodeLongHeader, RejectsRetryAndBadPnLen) {
  EXPECT_THROW(encode_long_header(sample_header(PacketType::kRetry)),
               std::invalid_argument);
  auto hdr = sample_header();
  hdr.packet_number_length = 5;
  EXPECT_THROW(encode_long_header(hdr), std::invalid_argument);
  hdr.packet_number_length = 0;
  EXPECT_THROW(encode_long_header(hdr), std::invalid_argument);
}

/// Build header bytes + fake protected body of `body` bytes with a
/// patched length field, as a protected packet would look.
std::vector<std::uint8_t> protected_packet(const LongHeader& hdr,
                                           std::size_t body) {
  auto enc = encode_long_header(hdr);
  util::ByteWriter w;
  w.write_bytes(enc.bytes);
  const std::size_t pn_len = static_cast<std::size_t>(hdr.packet_number_length);
  w.patch_be(enc.length_offset, 0x4000 | (pn_len + body), 2);
  w.write_repeated(0x5a, body);
  return w.take();
}

TEST(ParseLongHeader, RoundTripsInitial) {
  auto hdr = sample_header();
  hdr.token = {1, 2, 3, 4, 5};
  const auto pkt = protected_packet(hdr, 40);
  const auto view = parse_long_header(pkt, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, PacketType::kInitial);
  EXPECT_EQ(view->version, 1u);
  EXPECT_EQ(view->dcid, hdr.dcid);
  EXPECT_EQ(view->scid, hdr.scid);
  EXPECT_EQ(view->token_length, 5u);
  EXPECT_EQ(view->length, 44u);  // pn(4) + body(40)
  EXPECT_EQ(view->packet_start, 0u);
  EXPECT_EQ(view->packet_end, pkt.size());
  EXPECT_EQ(view->pn_offset, pkt.size() - 44);
}

TEST(ParseLongHeader, RoundTripsHandshake) {
  const auto pkt = protected_packet(sample_header(PacketType::kHandshake), 30);
  const auto view = parse_long_header(pkt, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, PacketType::kHandshake);
  EXPECT_EQ(view->token_length, 0u);
}

TEST(ParseLongHeader, ReportsErrors) {
  ParseError err{};
  // Not long header.
  const std::vector<std::uint8_t> short_hdr = {0x40, 1, 2, 3};
  EXPECT_FALSE(parse_long_header(short_hdr, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kNotLongHeader);
  // Fixed bit clear.
  const std::vector<std::uint8_t> no_fixed = {0x80, 0, 0, 0, 1, 0, 0};
  EXPECT_FALSE(parse_long_header(no_fixed, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kFixedBitClear);
  // Truncated.
  const std::vector<std::uint8_t> trunc = {0xc0, 0, 0};
  EXPECT_FALSE(parse_long_header(trunc, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kTruncated);
  // Offset past end.
  EXPECT_FALSE(parse_long_header(trunc, 10, &err).has_value());
  EXPECT_EQ(err, ParseError::kTruncated);
}

TEST(ParseLongHeader, RejectsOversizedCid) {
  std::vector<std::uint8_t> pkt = {0xc3, 0, 0, 0, 1, 21};
  pkt.resize(64, 0);
  ParseError err{};
  EXPECT_FALSE(parse_long_header(pkt, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kBadConnectionIdLength);
}

TEST(ParseLongHeader, RejectsLengthBeyondBuffer) {
  auto pkt = protected_packet(sample_header(), 40);
  pkt.resize(pkt.size() - 10);  // chop the body
  ParseError err{};
  EXPECT_FALSE(parse_long_header(pkt, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kBadLength);
}

TEST(ParseLongHeader, RejectsTinyLength) {
  // length < 20 cannot hold pn + tag.
  const auto pkt = protected_packet(sample_header(), 5);
  ParseError err{};
  EXPECT_FALSE(parse_long_header(pkt, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kBadLength);
}

TEST(ParseLongHeader, ParsesVersionNegotiation) {
  util::ByteWriter w;
  w.write_u8(0x80);
  w.write_u32(0);
  w.write_u8(4);
  w.write_bytes(from_hex_strict("aabbccdd"));
  w.write_u8(0);
  w.write_u32(1);
  w.write_u32(0xff00001d);
  const auto pkt = w.take();
  const auto view = parse_long_header(pkt, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->is_version_negotiation());
  EXPECT_EQ(view->dcid.to_hex(), "aabbccdd");
  ASSERT_EQ(view->supported_versions.size(), 2u);
  EXPECT_EQ(view->supported_versions[0], 1u);
  EXPECT_EQ(view->supported_versions[1], 0xff00001du);
  EXPECT_EQ(view->packet_end, pkt.size());
}

TEST(ParseLongHeader, RejectsEmptyVersionNegotiation) {
  util::ByteWriter w;
  w.write_u8(0x80);
  w.write_u32(0);
  w.write_u8(0);
  w.write_u8(0);
  const auto pkt = w.take();
  ParseError err{};
  EXPECT_FALSE(parse_long_header(pkt, 0, &err).has_value());
  EXPECT_EQ(err, ParseError::kBadLength);
}

TEST(ParseLongHeader, ParsesRetry) {
  util::ByteWriter w;
  w.write_u8(0xf0);  // long | fixed | retry
  w.write_u32(1);
  w.write_u8(0);   // dcid
  w.write_u8(8);   // scid
  w.write_bytes(from_hex_strict("1122334455667788"));
  w.write_repeated(0x77, 24);  // token
  w.write_repeated(0xee, 16);  // integrity tag
  const auto pkt = w.take();
  const auto view = parse_long_header(pkt, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, PacketType::kRetry);
  EXPECT_EQ(view->retry_token.size(), 24u);
  EXPECT_EQ(view->packet_end, pkt.size());
}

TEST(ParseLongHeader, ParsesAtNonZeroOffset) {
  const auto first = protected_packet(sample_header(), 25);
  const auto second = protected_packet(sample_header(PacketType::kHandshake), 30);
  std::vector<std::uint8_t> coalesced = first;
  coalesced.insert(coalesced.end(), second.begin(), second.end());
  const auto v1 = parse_long_header(coalesced, 0);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->packet_end, first.size());
  const auto v2 = parse_long_header(coalesced, v1->packet_end);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->type, PacketType::kHandshake);
  EXPECT_EQ(v2->packet_start, first.size());
  EXPECT_EQ(v2->packet_end, coalesced.size());
}

TEST(PacketTypeNames, AllNamed) {
  EXPECT_STREQ(packet_type_name(PacketType::kInitial), "initial");
  EXPECT_STREQ(packet_type_name(PacketType::kZeroRtt), "0rtt");
  EXPECT_STREQ(packet_type_name(PacketType::kHandshake), "handshake");
  EXPECT_STREQ(packet_type_name(PacketType::kRetry), "retry");
}

}  // namespace
}  // namespace quicsand::quic
