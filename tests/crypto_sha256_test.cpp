#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace quicsand::crypto {
namespace {

using util::to_hex;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// NIST FIPS 180-4 example vectors.
TEST(Sha256, EmptyInput) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::hash(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto msg = bytes_of("the quick brown fox jumps over the lazy dog");
  const auto expected = Sha256::hash(msg);
  // Feed in awkward chunk sizes crossing block boundaries.
  for (std::size_t chunk : {1u, 3u, 17u, 63u, 64u, 65u}) {
    Sha256 h;
    std::size_t off = 0;
    while (off < msg.size()) {
      const std::size_t take = std::min(chunk, msg.size() - off);
      h.update({msg.data() + off, take});
      off += take;
    }
    EXPECT_EQ(h.finish(), expected) << "chunk size " << chunk;
  }
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // 55/56/64 bytes hit the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    std::vector<std::uint8_t> msg(len, 0x5a);
    Sha256 a;
    a.update(msg);
    const auto one = a.finish();
    Sha256 b;
    b.update({msg.data(), len / 2});
    b.update({msg.data() + len / 2, len - len / 2});
    EXPECT_EQ(b.finish(), one) << "length " << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(bytes_of("garbage"));
  (void)h.finish();
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace quicsand::crypto
