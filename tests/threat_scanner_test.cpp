#include <gtest/gtest.h>

#include <set>

#include "scanner/deployment.hpp"
#include "scanner/retry_prober.hpp"
#include "scanner/zmap.hpp"
#include "threat/intel.hpp"

namespace quicsand {
namespace {

using net::Ipv4Address;

TEST(IntelDb, LookupAndSummary) {
  threat::IntelDb db;
  db.add(Ipv4Address(1), threat::Category::kMalicious, {threat::tags::kMirai});
  db.add(Ipv4Address(2), threat::Category::kBenign,
         {threat::tags::kResearch});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.lookup(Ipv4Address(1)).category, threat::Category::kMalicious);
  EXPECT_EQ(db.lookup(Ipv4Address(9)).category, threat::Category::kUnknown);

  const std::vector<Ipv4Address> sources = {Ipv4Address(1), Ipv4Address(2),
                                            Ipv4Address(3), Ipv4Address(4)};
  const auto summary = db.summarize(sources);
  EXPECT_EQ(summary.total, 4u);
  EXPECT_EQ(summary.malicious, 1u);
  EXPECT_EQ(summary.benign, 1u);
  EXPECT_EQ(summary.unknown, 2u);
  EXPECT_DOUBLE_EQ(summary.malicious_share(), 0.25);
  EXPECT_EQ(summary.tag_counts.at(threat::tags::kMirai), 1u);
}

TEST(IntelDb, OverwriteReplacesClassification) {
  threat::IntelDb db;
  db.add(Ipv4Address(1), threat::Category::kBenign);
  db.add(Ipv4Address(1), threat::Category::kMalicious,
         {threat::tags::kBruteforcer});
  EXPECT_EQ(db.lookup(Ipv4Address(1)).category, threat::Category::kMalicious);
  EXPECT_EQ(db.size(), 1u);
}

TEST(IntelDb, CategoryNames) {
  EXPECT_STREQ(threat::category_name(threat::Category::kBenign), "benign");
  EXPECT_STREQ(threat::category_name(threat::Category::kMalicious),
               "malicious");
  EXPECT_STREQ(threat::category_name(threat::Category::kUnknown), "unknown");
}

class DeploymentTest : public ::testing::Test {
 protected:
  static const asdb::AsRegistry& registry() {
    static const auto reg = asdb::AsRegistry::synthetic({}, 7);
    return reg;
  }
  static const scanner::Deployment& deployment() {
    static const auto dep =
        scanner::Deployment::synthetic(registry(), {}, 7);
    return dep;
  }
};

TEST_F(DeploymentTest, SizesMatchConfig) {
  const scanner::DeploymentConfig config{};
  EXPECT_EQ(deployment().size(),
            config.google_servers + config.facebook_servers +
                config.cloudflare_servers + config.other_content_servers +
                config.long_tail_servers);
}

TEST_F(DeploymentTest, MembershipAndFind) {
  const auto& first = deployment().servers().front();
  EXPECT_TRUE(deployment().is_quic_server(first.address));
  const auto* found = deployment().find(first.address);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->asn, first.asn);
  EXPECT_FALSE(deployment().is_quic_server(Ipv4Address(1)));
  EXPECT_EQ(deployment().find(Ipv4Address(1)), nullptr);
}

TEST_F(DeploymentTest, AddressesAreUnique) {
  std::set<std::uint32_t> seen;
  for (const auto& server : deployment().servers()) {
    EXPECT_TRUE(seen.insert(server.address.value()).second);
  }
}

TEST_F(DeploymentTest, ProviderVersionMixes) {
  std::uint64_t fb_total = 0, fb_mvfst27 = 0;
  std::uint64_t google_total = 0, google_d29 = 0;
  for (const auto& server : deployment().servers()) {
    if (server.asn == asdb::AsRegistry::kFacebook) {
      ++fb_total;
      if (server.version == 0xfaceb002) ++fb_mvfst27;
    } else if (server.asn == asdb::AsRegistry::kGoogle) {
      ++google_total;
      if (server.version == 0xff00001d) ++google_d29;
    }
  }
  ASSERT_GT(fb_total, 100u);
  ASSERT_GT(google_total, 100u);
  // §5.2: mvfst-draft-27 95% at Facebook, draft-29 78% at Google.
  EXPECT_NEAR(static_cast<double>(fb_mvfst27) / fb_total, 0.95, 0.05);
  EXPECT_NEAR(static_cast<double>(google_d29) / google_total, 0.78, 0.07);
}

TEST_F(DeploymentTest, RetrySupportedButNotEnabled) {
  // §6: Google and Facebook implementations support RETRY but do not
  // deploy it.
  for (const auto& server : deployment().servers()) {
    if (server.asn == asdb::AsRegistry::kGoogle ||
        server.asn == asdb::AsRegistry::kFacebook) {
      EXPECT_TRUE(server.supports_retry);
      EXPECT_FALSE(server.retry_enabled);
    }
  }
}

TEST(ScanPassTest, CoversWholeTelescopeExactlyOnce) {
  scanner::ScanPassConfig config;
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 20};
  config.start = util::kApril2021Start;
  config.duration = util::kHour;
  config.seed = 3;
  scanner::ScanPass pass(config);
  EXPECT_EQ(pass.total(), 1u << 12);
  std::set<std::uint32_t> seen;
  util::Timestamp last{};
  std::uint64_t count = 0;
  while (auto probe = pass.next()) {
    EXPECT_TRUE(config.telescope.contains(probe->target));
    EXPECT_GE(probe->time, last);
    last = probe->time;
    seen.insert(probe->target.value());
    ++count;
  }
  EXPECT_EQ(count, 1u << 12);
  EXPECT_EQ(seen.size(), 1u << 12);  // a permutation: every address once
}

TEST(ScanPassTest, AddressOrderIsPermutedNotSequential) {
  scanner::ScanPassConfig config;
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 22};
  config.duration = util::kHour;
  config.seed = 5;
  scanner::ScanPass pass(config);
  int ascending_runs = 0;
  std::uint32_t prev = 0;
  for (int i = 0; i < 256; ++i) {
    const auto probe = pass.next();
    ASSERT_TRUE(probe.has_value());
    if (probe->target.value() == prev + 1) ++ascending_runs;
    prev = probe->target.value();
  }
  EXPECT_LT(ascending_runs, 8);
}

TEST(ScanPassTest, CoverageSubsamples) {
  scanner::ScanPassConfig config;
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 18};
  config.duration = util::kHour;
  config.coverage = 0.5;
  config.seed = 9;
  scanner::ScanPass pass(config);
  std::uint64_t count = 0;
  while (pass.next()) ++count;
  EXPECT_NEAR(static_cast<double>(count), 1 << 13, (1 << 13) * 0.05);
}

TEST(ScanPassTest, DurationSpreadsProbes) {
  scanner::ScanPassConfig config;
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 22};
  config.start = util::kApril2021Start;
  config.duration = 2 * util::kHour;
  config.seed = 11;
  scanner::ScanPass pass(config);
  util::Timestamp last{};
  while (auto probe = pass.next()) last = probe->time;
  EXPECT_NEAR(util::to_seconds(last - config.start),
              util::to_seconds(config.duration),
              util::to_seconds(config.duration) * 0.1);
}

TEST(ScanPassTest, RejectsBadConfig) {
  scanner::ScanPassConfig config;
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 24};
  config.coverage = 0;
  EXPECT_THROW(scanner::ScanPass pass(config), std::invalid_argument);
  config.coverage = 1;
  config.duration = util::Duration{};
  EXPECT_THROW(scanner::ScanPass pass(config), std::invalid_argument);
}

class ProberTest : public DeploymentTest {};

TEST_F(ProberTest, UnknownAddressUnreachable) {
  scanner::RetryProber prober(deployment(), 1);
  const auto obs = prober.probe(Ipv4Address(12345));
  EXPECT_FALSE(obs.reachable);
  EXPECT_FALSE(obs.received_retry);
}

TEST_F(ProberTest, DeployedServersAnswerWithoutRetry) {
  scanner::RetryProber prober(deployment(), 2);
  std::vector<Ipv4Address> targets;
  for (const auto& server : deployment().servers()) {
    if (server.asn == asdb::AsRegistry::kGoogle ||
        server.asn == asdb::AsRegistry::kFacebook) {
      targets.push_back(server.address);
      if (targets.size() == 10) break;
    }
  }
  const auto observations = prober.probe_all(targets);
  ASSERT_EQ(observations.size(), 10u);
  for (const auto& obs : observations) {
    EXPECT_TRUE(obs.reachable);
    // §6: no RETRY in the wild from the top attacked providers.
    EXPECT_FALSE(obs.received_retry);
    EXPECT_TRUE(obs.handshake_completed);
    EXPECT_EQ(obs.round_trips, 1);
  }
}

TEST_F(ProberTest, RetryEnabledServerCostsExtraRoundTrip) {
  // A tiny deployment with RETRY flipped on (what-if configuration).
  scanner::DeploymentConfig tiny;
  tiny.google_servers = 1;
  tiny.facebook_servers = 0;
  tiny.cloudflare_servers = 0;
  tiny.other_content_servers = 0;
  tiny.long_tail_servers = 0;
  auto dep = scanner::Deployment::synthetic(registry(), tiny, 4);
  ASSERT_EQ(dep.size(), 1u);
  EXPECT_TRUE(dep.set_retry_enabled(dep.servers()[0].address, true));
  EXPECT_FALSE(dep.set_retry_enabled(Ipv4Address(1), true));
  scanner::RetryProber prober(dep, 5);
  const auto obs = prober.probe(dep.servers()[0].address);
  EXPECT_TRUE(obs.reachable);
  EXPECT_TRUE(obs.received_retry);
  EXPECT_TRUE(obs.retry_integrity_valid);
  EXPECT_EQ(obs.round_trips, 2);
}

}  // namespace
}  // namespace quicsand
