#include "util/time.hpp"

#include <gtest/gtest.h>

namespace quicsand::util {
namespace {

TEST(Time, April2021WindowBounds) {
  EXPECT_EQ(format_utc(kApril2021Start), "2021-04-01 00:00:00");
  EXPECT_EQ(format_utc(kApril2021End - kSecond), "2021-04-30 23:59:59");
  EXPECT_EQ((kApril2021End - kApril2021Start) / kDay, 30);
}

TEST(Time, FormatUtcEpoch) {
  EXPECT_EQ(format_utc(0), "1970-01-01 00:00:00");
}

TEST(Time, FormatUtcKnownInstant) {
  // 2021-04-06 18:00:00 UTC = 1617732000
  EXPECT_EQ(format_utc(1617732000LL * kSecond), "2021-04-06 18:00:00");
}

TEST(Time, HourBinning) {
  const Timestamp origin = kApril2021Start;
  EXPECT_EQ(hour_bin(origin, origin), 0);
  EXPECT_EQ(hour_bin(origin + kHour - 1, origin), 0);
  EXPECT_EQ(hour_bin(origin + kHour, origin), 1);
  EXPECT_EQ(hour_bin(origin + 30 * kDay - 1, origin), 30 * 24 - 1);
}

TEST(Time, MinuteBinning) {
  const Timestamp origin = 0;
  EXPECT_EQ(minute_bin(59 * kSecond, origin), 0);
  EXPECT_EQ(minute_bin(60 * kSecond, origin), 1);
}

TEST(Time, HourOfDay) {
  EXPECT_EQ(hour_of_day(kApril2021Start), 0);
  EXPECT_EQ(hour_of_day(kApril2021Start + 6 * kHour), 6);
  EXPECT_EQ(hour_of_day(kApril2021Start + 18 * kHour + 30 * kMinute), 18);
  EXPECT_EQ(hour_of_day(kApril2021Start + 2 * kDay + 23 * kHour), 23);
}

TEST(Time, SecondsOfDay) {
  EXPECT_EQ(seconds_of_day(kApril2021Start), 0);
  EXPECT_EQ(seconds_of_day(kApril2021Start + 90 * kSecond), 90);
}

TEST(Time, DurationConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(255.0)), 255.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(5 * kSecond), "5s");
  EXPECT_EQ(format_duration(255 * kSecond), "4m15s");
  EXPECT_EQ(format_duration(90 * kMinute), "1h30m");
  EXPECT_EQ(format_duration(36 * kHour), "36h0m");
  EXPECT_EQ(format_duration(28 * kDay), "28d0h");
  EXPECT_EQ(format_duration(-5 * kSecond), "-5s");
}

}  // namespace
}  // namespace quicsand::util
