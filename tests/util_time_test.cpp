#include "util/time.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace quicsand::util {
namespace {

TEST(Time, April2021WindowBounds) {
  EXPECT_EQ(format_utc(kApril2021Start), "2021-04-01 00:00:00");
  EXPECT_EQ(format_utc(kApril2021End - kSecond), "2021-04-30 23:59:59");
  EXPECT_EQ((kApril2021End - kApril2021Start) / kDay, 30);
}

TEST(Time, FormatUtcEpoch) {
  EXPECT_EQ(format_utc(Timestamp{}), "1970-01-01 00:00:00");
}

TEST(Time, FormatUtcKnownInstant) {
  // 2021-04-06 18:00:00 UTC = 1617732000
  EXPECT_EQ(format_utc(Timestamp{} + 1617732000LL * kSecond),
            "2021-04-06 18:00:00");
}

TEST(Time, HourBinning) {
  const Timestamp origin = kApril2021Start;
  EXPECT_EQ(hour_bin(origin, origin), HourBin{0});
  EXPECT_EQ(hour_bin(origin + kHour - kMicrosecond, origin), HourBin{0});
  EXPECT_EQ(hour_bin(origin + kHour, origin), HourBin{1});
  EXPECT_EQ(hour_bin(origin + (30 * kDay) - kMicrosecond, origin),
            HourBin{30 * 24 - 1});
}

TEST(Time, MinuteBinning) {
  const Timestamp origin{};
  EXPECT_EQ(minute_bin(origin + 59 * kSecond, origin), MinuteBin{0});
  EXPECT_EQ(minute_bin(origin + 60 * kSecond, origin), MinuteBin{1});
}

TEST(Time, PreOriginBinsUseFloorDivision) {
  // Truncation toward zero would put the whole (-1h, 1h) range in bin 0;
  // floor semantics give pre-origin timestamps their own negative bins.
  const Timestamp origin = kApril2021Start;
  EXPECT_EQ(minute_bin(origin - kMicrosecond, origin), MinuteBin{-1});
  EXPECT_EQ(minute_bin(origin - kMinute, origin), MinuteBin{-1});
  EXPECT_EQ(minute_bin(origin - kMinute - kMicrosecond, origin),
            MinuteBin{-2});
  EXPECT_EQ(hour_bin(origin - kMicrosecond, origin), HourBin{-1});
  EXPECT_EQ(hour_bin(origin - kHour, origin), HourBin{-1});
}

TEST(Time, BinOffsetOverflowThrows) {
  const Timestamp far_future{std::numeric_limits<std::int64_t>::max()};
  const Timestamp before_epoch{-2};
  EXPECT_THROW(hour_bin(far_future, before_epoch), std::overflow_error);
  EXPECT_THROW(minute_bin(far_future, before_epoch), std::overflow_error);
  EXPECT_EQ(hour_bin(far_future, Timestamp{}),
            HourBin{std::numeric_limits<std::int64_t>::max() / kHour.count()});
}

TEST(Time, HourOfDay) {
  EXPECT_EQ(hour_of_day(kApril2021Start), 0);
  EXPECT_EQ(hour_of_day(kApril2021Start + 6 * kHour), 6);
  EXPECT_EQ(hour_of_day(kApril2021Start + (18 * kHour) + (30 * kMinute)), 18);
  EXPECT_EQ(hour_of_day(kApril2021Start + (2 * kDay) + (23 * kHour)), 23);
}

TEST(Time, SecondsOfDay) {
  EXPECT_EQ(seconds_of_day(kApril2021Start), 0);
  EXPECT_EQ(seconds_of_day(kApril2021Start + 90 * kSecond), 90);
}

TEST(Time, DurationConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(255.0)), 255.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
}

TEST(Time, FromSecondsFloorsNegativeDurations) {
  // Truncation toward zero used to collapse (-1, 0) microsecond values
  // to zero; floor semantics keep negative durations negative while
  // leaving every non-negative input bit-identical to the old behavior.
  EXPECT_EQ(from_seconds(to_seconds(-kMicrosecond)), -kMicrosecond);
  EXPECT_EQ(from_seconds(-0.0000001), -kMicrosecond);
  EXPECT_EQ(from_seconds(-1.0), -kSecond);
  EXPECT_EQ(from_seconds(-1.5), -(kSecond + (500 * kMillisecond)));
  EXPECT_EQ(from_seconds(1.5), kSecond + (500 * kMillisecond));
  EXPECT_EQ(from_seconds(2.5), (2 * kSecond) + (500 * kMillisecond));
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(5 * kSecond), "5s");
  EXPECT_EQ(format_duration(255 * kSecond), "4m15s");
  EXPECT_EQ(format_duration(90 * kMinute), "1h30m");
  EXPECT_EQ(format_duration(36 * kHour), "36h0m");
  EXPECT_EQ(format_duration(28 * kDay), "28d0h");
  EXPECT_EQ(format_duration(-5 * kSecond), "-5s");
}

}  // namespace
}  // namespace quicsand::util
