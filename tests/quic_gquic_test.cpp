#include "quic/gquic.hpp"

#include <gtest/gtest.h>

#include "quic/dissector.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::quic {
namespace {

ConnectionId cid8(util::Rng& rng) { return ConnectionId(rng.bytes(8)); }

TEST(Gquic, BuildParseRoundTripClientPacket) {
  util::Rng rng(1);
  const auto cid = cid8(rng);
  const auto payload = rng.bytes(200);
  // Client packet: version present (Q050).
  const auto packet = build_gquic_packet(cid, 0x51303530, 7, payload);
  const auto view = parse_gquic_packet(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->has_version);
  EXPECT_EQ(view->version, 0x51303530u);
  EXPECT_EQ(view->connection_id, cid);
  EXPECT_EQ(view->packet_number, 7u);
  EXPECT_EQ(view->packet_number_length, 1);
  EXPECT_EQ(view->payload_size, payload.size());
  EXPECT_EQ(view->header_size + view->payload_size, packet.size());
}

TEST(Gquic, ServerResponseOmitsVersion) {
  util::Rng rng(2);
  const auto cid = cid8(rng);
  const auto packet = build_gquic_server_response(cid, 42, 300, rng);
  const auto view = parse_gquic_packet(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(view->has_version);
  EXPECT_EQ(view->version, 0u);
  EXPECT_EQ(view->connection_id, cid);
  EXPECT_EQ(view->packet_number, 42u);
  EXPECT_GE(view->payload_size, 300u);
}

TEST(Gquic, PacketNumberEncodingWidths) {
  util::Rng rng(3);
  const auto cid = cid8(rng);
  const auto payload = rng.bytes(20);
  struct Case {
    std::uint64_t pn;
    int expected_length;
  };
  for (const Case c : {Case{5, 1}, Case{0x1234, 2}, Case{0x123456, 4},
                       Case{0x11223344556ULL, 6}}) {
    const auto packet = build_gquic_packet(cid, 0, c.pn, payload);
    const auto view = parse_gquic_packet(packet);
    ASSERT_TRUE(view.has_value()) << c.pn;
    EXPECT_EQ(view->packet_number, c.pn);
    EXPECT_EQ(view->packet_number_length, c.expected_length);
  }
}

TEST(Gquic, RejectsInvalidInput) {
  util::Rng rng(4);
  // Long-header form bit set.
  EXPECT_FALSE(parse_gquic_packet(std::vector<std::uint8_t>{0x88, 1, 2})
                   .has_value());
  // No connection id flag.
  std::vector<std::uint8_t> no_cid(32, 0);
  no_cid[0] = 0x00;
  EXPECT_FALSE(parse_gquic_packet(no_cid).has_value());
  // Version flag set but not an ASCII 'Q' version.
  std::vector<std::uint8_t> bad_version = {0x09, 1, 2, 3, 4, 5, 6, 7, 8,
                                           0xde, 0xad, 0xbe, 0xef};
  bad_version.resize(40, 0);
  EXPECT_FALSE(parse_gquic_packet(bad_version).has_value());
  // Truncated after the flags byte.
  EXPECT_FALSE(parse_gquic_packet(std::vector<std::uint8_t>{0x08, 1})
                   .has_value());
  // Data packet with a too-small payload.
  const auto tiny = build_gquic_packet(cid8(rng), 0, 1, rng.bytes(4));
  EXPECT_FALSE(parse_gquic_packet(tiny).has_value());
}

TEST(Gquic, BuildRejectsBadArguments) {
  util::Rng rng(5);
  const auto payload = rng.bytes(20);
  EXPECT_THROW(build_gquic_packet(ConnectionId(rng.bytes(4)), 0, 1, payload),
               std::invalid_argument);
  EXPECT_THROW(build_gquic_packet(cid8(rng), 0, 1ULL << 50, payload),
               std::invalid_argument);
}

TEST(Gquic, DissectorClassifiesServerResponse) {
  util::Rng rng(6);
  const auto packet = build_gquic_server_response(cid8(rng), 9, 250, rng);
  const auto result = dissect_udp_payload(packet);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kGquic);
  EXPECT_EQ(result.packets[0].version, 0u);  // server: no version on wire
  EXPECT_EQ(result.packets[0].dcid.size(), 8u);
}

TEST(Gquic, DissectorClassifiesVersionedClientPacket) {
  util::Rng rng(7);
  const auto packet =
      build_gquic_packet(cid8(rng), 0x51303433, 1, rng.bytes(1000));
  const auto result = dissect_udp_payload(packet);
  ASSERT_TRUE(result.is_quic) << result.reject_reason;
  EXPECT_EQ(result.packets[0].kind, QuicPacketKind::kGquic);
}

TEST(Gquic, DissectorStillRejectsDns) {
  const std::vector<std::uint8_t> dns = {0x12, 0x34, 0x81, 0x80,
                                         0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(dissect_udp_payload(dns).is_quic);
}

TEST(Gquic, FuzzNeverThrows) {
  util::Rng rng(8);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto junk = rng.bytes(rng.uniform(100));
    ASSERT_NO_THROW((void)parse_gquic_packet(junk));
  }
}

}  // namespace
}  // namespace quicsand::quic
