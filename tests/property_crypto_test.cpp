// Property tests for the crypto core: the optimized implementations are
// checked against slow reference implementations on random inputs.
#include <gtest/gtest.h>

#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace quicsand::crypto {
namespace {

/// Bitwise GF(2^128) multiplication — the textbook SP 800-38D algorithm,
/// used as the reference for the table-driven GHASH.
std::array<std::uint8_t, 16> gf_mult_reference(
    const std::array<std::uint8_t, 16>& x,
    const std::array<std::uint8_t, 16>& y) {
  std::array<std::uint8_t, 16> z{};
  std::array<std::uint8_t, 16> v = y;
  for (int i = 0; i < 128; ++i) {
    const int byte = i / 8;
    const int bit = 7 - i % 8;
    if ((x[static_cast<std::size_t>(byte)] >> bit) & 1) {
      for (int b = 0; b < 16; ++b) {
        z[static_cast<std::size_t>(b)] ^= v[static_cast<std::size_t>(b)];
      }
    }
    const bool lsb = (v[15] & 1) != 0;
    for (int b = 15; b > 0; --b) {
      v[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(
          (v[static_cast<std::size_t>(b)] >> 1) |
          ((v[static_cast<std::size_t>(b - 1)] & 1) << 7));
    }
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

/// GHASH computed with the reference multiplication.
std::array<std::uint8_t, 16> ghash_reference(
    std::span<const std::uint8_t> key_h, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ct) {
  std::array<std::uint8_t, 16> h{};
  std::copy(key_h.begin(), key_h.end(), h.begin());
  std::array<std::uint8_t, 16> y{};
  auto absorb = [&](std::span<const std::uint8_t> data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take = std::min<std::size_t>(16, data.size() - off);
      for (std::size_t i = 0; i < take; ++i) y[i] ^= data[off + i];
      y = gf_mult_reference(y, h);
      off += take;
    }
  };
  absorb(aad);
  absorb(ct);
  std::array<std::uint8_t, 16> len{};
  const std::uint64_t la = aad.size() * 8, lc = ct.size() * 8;
  for (int i = 0; i < 8; ++i) {
    len[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(la >> (8 * (7 - i)));
    len[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(lc >> (8 * (7 - i)));
  }
  for (int i = 0; i < 16; ++i) {
    y[static_cast<std::size_t>(i)] ^= len[static_cast<std::size_t>(i)];
  }
  return gf_mult_reference(y, h);
}

TEST(GcmProperty, TagMatchesBitwiseReference) {
  util::Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const auto key = rng.bytes(16);
    const auto nonce = rng.bytes(12);
    const auto aad = rng.bytes(rng.uniform(64));
    const auto pt = rng.bytes(rng.uniform(200));
    const AesGcm gcm(key);
    const auto sealed = gcm.seal(nonce, aad, pt);
    // Recompute the tag from scratch with the reference GHASH.
    Aes128 aes(key);
    const std::array<std::uint8_t, 16> zero{};
    const auto h = aes.encrypt_block(zero);
    const auto ct = std::span<const std::uint8_t>(sealed).first(pt.size());
    const auto s = ghash_reference(h, aad, ct);
    std::array<std::uint8_t, 16> j0{};
    std::copy(nonce.begin(), nonce.end(), j0.begin());
    j0[15] = 1;
    const auto ekj0 = aes.encrypt_block(j0);
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(sealed[pt.size() + i],
                static_cast<std::uint8_t>(s[i] ^ ekj0[i]))
          << "trial " << trial << " byte " << i;
    }
  }
}

TEST(GcmProperty, SealOpenRandomSizes) {
  util::Rng rng(102);
  const AesGcm gcm(rng.bytes(16));
  for (int trial = 0; trial < 100; ++trial) {
    const auto nonce = rng.bytes(12);
    const auto aad = rng.bytes(rng.uniform(100));
    const auto pt = rng.bytes(rng.uniform(1500));
    const auto sealed = gcm.seal(nonce, aad, pt);
    const auto opened = gcm.open(nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, pt);
  }
}

TEST(GcmProperty, SingleBitFlipAlwaysRejected) {
  util::Rng rng(103);
  const AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto pt = rng.bytes(100);
  const auto sealed = gcm.seal(nonce, {}, pt);
  for (int trial = 0; trial < 64; ++trial) {
    auto corrupted = sealed;
    const auto bit = rng.uniform(corrupted.size() * 8);
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(gcm.open(nonce, {}, corrupted).has_value());
  }
}

TEST(Sha256Property, RandomSplitsMatchOneShot) {
  util::Rng rng(104);
  for (int trial = 0; trial < 40; ++trial) {
    const auto msg = rng.bytes(1 + rng.uniform(500));
    const auto expected = Sha256::hash(msg);
    Sha256 h;
    std::size_t off = 0;
    while (off < msg.size()) {
      const auto take =
          std::min<std::size_t>(1 + rng.uniform(97), msg.size() - off);
      h.update({msg.data() + off, take});
      off += take;
    }
    EXPECT_EQ(h.finish(), expected);
  }
}

class HkdfLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HkdfLengthTest, OutputLengthAndPrefixConsistency) {
  util::Rng rng(105);
  const auto prk = rng.bytes(32);
  const auto info = rng.bytes(10);
  const auto out = hkdf_expand(prk, info, GetParam());
  EXPECT_EQ(out.size(), GetParam());
  // HKDF output is prefix-consistent: a longer expansion starts with the
  // shorter one.
  const auto longer = hkdf_expand(prk, info, GetParam() + 16);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), longer.begin()));
}

INSTANTIATE_TEST_SUITE_P(Lengths, HkdfLengthTest,
                         ::testing::Values(1, 12, 16, 31, 32, 33, 42, 64,
                                           255));

}  // namespace
}  // namespace quicsand::crypto
