// Property tests for the analysis pipeline: sessionization invariants on
// random record streams, detector monotonicity in the threshold weight,
// and correlator consistency against the raw attack intervals.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/correlate.hpp"
#include "core/dos.hpp"
#include "core/sessions.hpp"
#include "util/rng.hpp"
#include "util/sharded_counter.hpp"

namespace quicsand::core {
namespace {

/// Random stream of QUIC request records from a pool of sources, sorted
/// by time, as the classifier would produce them.
util::Duration random_duration(util::Rng& rng, util::Duration bound) {
  return util::Duration{static_cast<std::int64_t>(
      rng.uniform(static_cast<std::uint64_t>(bound.count())))};
}

std::vector<PacketRecord> random_records(util::Rng& rng,
                                         std::size_t packets,
                                         std::size_t sources) {
  std::vector<PacketRecord> records;
  records.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    PacketRecord record;
    record.timestamp =
        util::kApril2021Start + random_duration(rng, 6 * util::kHour);
    record.src = net::Ipv4Address(
        1000 + static_cast<std::uint32_t>(rng.uniform(sources)));
    record.dst = net::Ipv4Address(
        static_cast<std::uint32_t>(0x2c000000 + rng.uniform(1 << 16)));
    record.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
    record.dst_port = 443;
    record.wire_size = 1200;
    record.cls = TrafficClass::kQuicRequest;
    record.quic_version = 1;
    records.push_back(record);
  }
  std::sort(records.begin(), records.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });
  return records;
}

TEST(SessionProperty, PacketsAreConserved) {
  util::Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const auto records = random_records(rng, 2000, 40);
    for (const auto timeout :
         {util::kMinute, 5 * util::kMinute, util::kHour}) {
      const auto sessions =
          build_sessions(records, timeout, quic_request_filter());
      std::uint64_t total = 0;
      for (const auto& session : sessions) total += session.packets.count();
      EXPECT_EQ(total, records.size());
    }
  }
}

TEST(SessionProperty, SameSourceSessionsSeparatedByMoreThanTimeout) {
  util::Rng rng(43);
  const auto records = random_records(rng, 3000, 25);
  const auto timeout = 2 * util::kMinute;
  const auto sessions =
      build_sessions(records, timeout, quic_request_filter());
  std::map<std::uint32_t, std::vector<const Session*>> by_source;
  for (const auto& session : sessions) {
    by_source[session.source.value()].push_back(&session);
  }
  for (auto& [source, list] : by_source) {
    std::sort(list.begin(), list.end(),
              [](const Session* a, const Session* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GT(list[i]->start - list[i - 1]->end, timeout);
    }
  }
}

TEST(SessionProperty, SessionBoundsContainAllMinuteBins) {
  util::Rng rng(47);
  const auto records = random_records(rng, 1500, 30);
  const auto sessions =
      build_sessions(records, 5 * util::kMinute, quic_request_filter());
  for (const auto& session : sessions) {
    EXPECT_LE(session.start, session.end);
    std::uint64_t binned = 0;
    for (const auto count : session.minute_counts) binned += count;
    EXPECT_EQ(binned, session.packets.count());
    // The last bin index must match the duration: slots are
    // (i*60s, (i+1)*60s] with the start packet in slot 0, so a duration
    // of exactly k minutes still ends in slot k-1.
    const auto expected_slots =
        session.duration() == util::Duration{}
            ? 1u
            : static_cast<std::size_t>((session.duration() -
                                        util::kMicrosecond) /
                                       util::kMinute) +
                  1;
    EXPECT_EQ(session.minute_counts.size(), expected_slots);
  }
}

TEST(SessionRegression, MinuteBoundaryPacketStaysInClosingMinute) {
  // A packet exactly 60 s after the session start has one minute of
  // elapsed activity: it must land in minute slot 0, not open a phantom
  // trailing slot whose near-empty count would let a 1 µs timing
  // difference flip peak_pps() across the DoS threshold.
  std::vector<PacketRecord> records;
  for (int i = 0; i < 30; ++i) {
    PacketRecord record;
    record.timestamp =
        util::kApril2021Start + i * 2 * util::kSecond;
    record.src = net::Ipv4Address(1);
    record.dst = net::Ipv4Address(2);
    record.dst_port = 443;
    record.wire_size = 100;
    record.cls = TrafficClass::kQuicRequest;
    records.push_back(record);
  }
  PacketRecord boundary = records.back();
  boundary.timestamp = util::kApril2021Start + util::kMinute;  // start + 60 s
  records.push_back(boundary);

  const auto sessions =
      build_sessions(records, 5 * util::kMinute, quic_request_filter());
  ASSERT_EQ(sessions.size(), 1u);
  const Session& session = sessions.front();
  EXPECT_EQ(session.duration(), util::kMinute);
  ASSERT_EQ(session.minute_counts.size(), 1u);
  EXPECT_EQ(session.minute_counts[0], 31u);
  EXPECT_DOUBLE_EQ(session.peak_pps().count(), 31.0 / 60.0);

  // One microsecond past the boundary genuinely starts the next minute.
  PacketRecord past = boundary;
  past.timestamp += util::kMicrosecond;
  records.push_back(past);
  const auto extended =
      build_sessions(records, 5 * util::kMinute, quic_request_filter());
  ASSERT_EQ(extended.size(), 1u);
  ASSERT_EQ(extended.front().minute_counts.size(), 2u);
  EXPECT_EQ(extended.front().minute_counts[1], 1u);
  EXPECT_DOUBLE_EQ(extended.front().peak_pps().count(), 31.0 / 60.0);
}

TEST(SessionProperty, ShardPartitionedSessionizationMergesToWhole) {
  // Sessionization is source-local: building sessions over a
  // shard-partitioned record stream and merging must equal building them
  // over the whole stream — the invariant the ParallelPipeline rests on.
  util::Rng rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    const auto records = random_records(rng, 2000, 50);
    const auto whole =
        build_sessions(records, 3 * util::kMinute, quic_request_filter());
    for (const std::size_t shards : {2u, 4u, 7u}) {
      std::vector<std::vector<PacketRecord>> parts(shards);
      for (const auto& record : records) {
        parts[util::shard_of(record.src.value(), shards)].push_back(record);
      }
      std::vector<std::vector<Session>> sessions(shards);
      for (std::size_t s = 0; s < shards; ++s) {
        sessions[s] = build_sessions(parts[s], 3 * util::kMinute,
                                     quic_request_filter());
      }
      const auto merged = merge_sessions(std::move(sessions));
      EXPECT_EQ(merged.sessions, whole);
      // The index maps must address every merged slot exactly once.
      std::vector<bool> seen(merged.sessions.size(), false);
      for (const auto& part : merged.global_index) {
        for (const auto index : part) {
          ASSERT_LT(index, seen.size());
          EXPECT_FALSE(seen[index]);
          seen[index] = true;
        }
      }
    }
  }
}

TEST(SessionProperty, ShardedGapProfilesMergeToWholeSweep) {
  util::Rng rng(73);
  const auto records = random_records(rng, 2500, 40);
  std::vector<util::Duration> timeouts;
  for (const int minutes : {1, 3, 10, 45}) {
    timeouts.push_back(minutes * util::kMinute);
  }
  const auto expected =
      timeout_sweep(records, timeouts, quic_request_filter());
  for (const std::size_t shards : {2u, 4u, 7u}) {
    std::vector<std::vector<PacketRecord>> parts(shards);
    for (const auto& record : records) {
      parts[util::shard_of(record.src.value(), shards)].push_back(record);
    }
    GapProfile merged;
    for (auto& part : parts) {
      merge_gap_profiles(merged,
                         collect_gap_profile(part, quic_request_filter()));
    }
    EXPECT_EQ(sweep_counts(std::move(merged), timeouts), expected);
  }
}

TEST(SessionProperty, SweepMatchesBuildSessionsOnRandomTimeouts) {
  util::Rng rng(53);
  const auto records = random_records(rng, 2500, 35);
  std::vector<util::Duration> timeouts;
  for (int i = 0; i < 12; ++i) {
    timeouts.push_back(rng.uniform_range(1, 90) * util::kMinute);
  }
  const auto sweep = timeout_sweep(records, timeouts, quic_request_filter());
  for (const auto& [timeout, count] : sweep) {
    EXPECT_EQ(count,
              build_sessions(records, timeout, quic_request_filter()).size());
  }
}

TEST(DosProperty, DetectionIsMonotoneInWeight) {
  util::Rng rng(59);
  // Build sessions with a wide spread of sizes.
  std::vector<Session> sessions;
  for (int i = 0; i < 200; ++i) {
    Session session;
    session.source = net::Ipv4Address(static_cast<std::uint32_t>(i));
    session.start = util::kApril2021Start;
    const auto minutes = 1 + rng.uniform(120);
    session.end = session.start + minutes * util::kMinute;
    session.packets = PacketCount{1 + rng.uniform(2000)};
    session.minute_counts.assign(minutes + 1, 0);
    for (std::uint64_t p = 0; p < session.packets.count(); ++p) {
      ++session.minute_counts[rng.uniform(minutes + 1)];
    }
    sessions.push_back(std::move(session));
  }
  std::size_t previous = sessions.size() + 1;
  std::set<std::uint32_t> previous_set;
  bool first = true;
  for (const double w : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const auto attacks =
        detect_attacks(sessions, DosThresholds{}.weighted(w));
    std::set<std::uint32_t> current;
    for (const auto& attack : attacks) current.insert(attack.victim.value());
    EXPECT_LE(attacks.size(), previous);
    if (!first) {
      // Stricter thresholds select a subset.
      for (const auto v : current) EXPECT_TRUE(previous_set.contains(v));
    }
    previous = attacks.size();
    previous_set = std::move(current);
    first = false;
  }
}

TEST(DosProperty, DetectedPlusExcludedCoverAllSessions) {
  util::Rng rng(61);
  std::vector<Session> sessions;
  for (int i = 0; i < 150; ++i) {
    Session session;
    session.source = net::Ipv4Address(static_cast<std::uint32_t>(i));
    session.start = util::kApril2021Start;
    const auto minutes = 1 + rng.uniform(30);
    session.end = session.start + minutes * util::kMinute;
    session.packets = PacketCount{1 + rng.uniform(500)};
    session.minute_counts.assign(minutes + 1, 0);
    session.minute_counts[0] =
        static_cast<std::uint32_t>(session.packets.count());
    sessions.push_back(std::move(session));
  }
  const auto attacks = detect_attacks(sessions, {});
  const auto excluded = summarize_excluded(sessions, {});
  EXPECT_EQ(attacks.size() + excluded.count, sessions.size());
}

DetectedAttack make_attack(std::uint32_t victim, util::Timestamp start,
                           util::Duration duration) {
  DetectedAttack attack;
  attack.victim = net::Ipv4Address(victim);
  attack.start = start;
  attack.end = start + duration;
  attack.packets = PacketCount{100};
  attack.peak_pps = Pps{1.0};
  return attack;
}

TEST(CorrelatorProperty, RandomSchedulesAreConsistent) {
  util::Rng rng(67);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<DetectedAttack> quic, common;
    for (int i = 0; i < 40; ++i) {
      quic.push_back(make_attack(
          static_cast<std::uint32_t>(rng.uniform(12)),
          util::kApril2021Start + random_duration(rng, util::kDay),
          util::kMinute + random_duration(rng, 2 * util::kHour)));
    }
    for (int i = 0; i < 30; ++i) {
      common.push_back(make_attack(
          static_cast<std::uint32_t>(rng.uniform(12)),
          util::kApril2021Start + random_duration(rng, util::kDay),
          util::kMinute + random_duration(rng, 3 * util::kHour)));
    }
    const auto report = correlate_attacks(quic, common);
    EXPECT_EQ(report.total(), quic.size());
    EXPECT_NEAR(report.share(Relation::kConcurrent) +
                    report.share(Relation::kSequential) +
                    report.share(Relation::kIsolated),
                1.0, 1e-9);
    for (const auto& correlation : report.per_attack) {
      const auto& attack = quic[correlation.quic_attack_index];
      // Re-derive the relation directly from the intervals.
      bool any_same_victim = false;
      bool any_overlap = false;
      for (const auto& other : common) {
        if (other.victim != attack.victim) continue;
        any_same_victim = true;
        if (attack.overlaps(other, util::kSecond)) any_overlap = true;
      }
      switch (correlation.relation) {
        case Relation::kConcurrent:
          EXPECT_TRUE(any_overlap);
          EXPECT_GT(correlation.overlap_share, 0.0);
          EXPECT_LE(correlation.overlap_share, 1.0);
          break;
        case Relation::kSequential:
          EXPECT_TRUE(any_same_victim);
          EXPECT_GE(correlation.gap, util::Duration{});
          break;
        case Relation::kIsolated:
          EXPECT_FALSE(any_same_victim);
          break;
      }
    }
  }
}

}  // namespace
}  // namespace quicsand::core
