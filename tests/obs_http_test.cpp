// Admin HTTP server: endpoint bodies pinned against injected clocks,
// protocol error paths (404/405/408/413/503), the /events live tail, and
// scrapes racing metric writes (the tsan preset runs this suite).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/http/admin.hpp"
#include "obs/http/server.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tsdb.hpp"

namespace quicsand::obs::http {
namespace {

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_until_eof(int fd) {
  std::string out;
  char buffer[4096];
  while (true) {
    const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lower-case keys
  std::string body;  ///< de-chunked when Transfer-Encoding: chunked
};

std::string to_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string decode_chunked(std::string_view raw) {
  std::string out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const auto line_end = raw.find("\r\n", pos);
    if (line_end == std::string_view::npos) break;
    std::size_t size = 0;
    const auto* begin = raw.data() + pos;
    const auto* end = raw.data() + line_end;
    if (std::from_chars(begin, end, size, 16).ptr != end) break;
    if (size == 0) break;  // terminating chunk
    pos = line_end + 2;
    if (pos + size > raw.size()) break;
    out.append(raw.substr(pos, size));
    pos += size + 2;  // chunk data + trailing CRLF
  }
  return out;
}

HttpResponse parse_response(const std::string& raw) {
  HttpResponse response;
  const auto head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return response;
  std::istringstream head(raw.substr(0, head_end));
  std::string line;
  std::getline(head, line);  // "HTTP/1.1 200 OK\r"
  if (line.size() >= 12) {
    const auto* begin = line.data() + 9;
    std::from_chars(begin, begin + 3, response.status);
  }
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    auto value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    response.headers[to_lower(line.substr(0, colon))] = value;
  }
  const auto body = raw.substr(head_end + 4);
  response.body = response.headers["transfer-encoding"] == "chunked"
                      ? decode_chunked(body)
                      : body;
  return response;
}

HttpResponse http_raw(std::uint16_t port, const std::string& request) {
  const int fd = connect_to(port);
  send_all(fd, request);
  const auto raw = read_until_eof(fd);
  ::close(fd);
  return parse_response(raw);
}

HttpResponse http_get(std::uint16_t port, const std::string& target) {
  return http_raw(port,
                  "GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

/// Line-level Prometheus text exposition check: every line is a HELP,
/// a TYPE with a known kind, or `name[{labels}] value` with a numeric
/// value and a well-formed metric name.
void expect_valid_prometheus(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto kind = line.substr(line.rfind(' ') + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const auto name = line.substr(0, space);
    const auto value = line.substr(space + 1);
    EXPECT_TRUE((name[0] >= 'a' && name[0] <= 'z') ||
                (name[0] >= 'A' && name[0] <= 'Z') || name[0] == '_')
        << line;
    double parsed = 0;
    const auto* begin = value.data();
    const auto* end = value.data() + value.size();
    EXPECT_EQ(std::from_chars(begin, end, parsed).ptr, end) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(ObsHttp, MetricsEndpointServesPrometheusExposition) {
  MetricsRegistry metrics;
  metrics.counter("monitor.packets", "telescope packets streamed").add(42);
  metrics.histogram("pipeline.batch_us", {10, 100}, "batch latency")
      .observe(7);
  AdminOptions options;
  options.metrics = &metrics;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  const auto response = http_get(admin.port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.at("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(response.body, metrics.to_prometheus());
  expect_valid_prometheus(response.body);
  EXPECT_NE(response.body.find("quicsand_monitor_packets_total 42"),
            std::string::npos);

  const auto json = http_get(admin.port(), "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.body, metrics.to_json());
}

TEST(ObsHttp, GoldenStatsWithInjectedClockAndThreadCount) {
  MetricsRegistry metrics;
  metrics.counter("monitor.packets").add(5000);
  AdminOptions options;
  options.metrics = &metrics;
  options.clock = [] { return std::uint64_t{2500000}; };  // 2.5 s
  options.thread_count = [] { return std::int64_t{7}; };
  AdminServer admin(std::move(options));

  EXPECT_EQ(admin.stats_json(),
            "{\"uptime_s\": 2.500, \"threads\": 7, "
            "\"http\": {\"accepted\": 0, \"served\": 0, \"rejected\": 0}, "
            "\"counters\": {\"monitor.packets\": 5000}, "
            "\"gauges\": {}, "
            "\"throughput_per_s\": {\"monitor.packets\": 2000.000}}");

  ASSERT_TRUE(admin.start()) << admin.last_error();
  const auto response = http_get(admin.port(), "/stats");
  EXPECT_EQ(response.status, 200);
  // One connection is now accounted for by the time the handler runs.
  EXPECT_NE(response.body.find("\"accepted\": 1"), std::string::npos);
  EXPECT_NE(response.body.find("\"threads\": 7"), std::string::npos);
}

TEST(ObsHttp, HealthzFollowsTheWatchdog) {
  auto now = std::make_shared<std::uint64_t>(0);
  Health health([now] { return *now; });
  auto& component =
      health.component("stage", 10 * util::kSecond, 60 * util::kSecond);
  component.set_ready(true);
  AdminOptions options;
  options.health = &health;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  auto healthz = http_get(admin.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, health.to_json() + "\n");

  *now = static_cast<std::uint64_t>((61 * util::kSecond).count());
  healthz = http_get(admin.port(), "/healthz");
  EXPECT_EQ(healthz.status, 503);
  EXPECT_NE(healthz.body.find("\"status\": \"unhealthy\""),
            std::string::npos);

  component.heartbeat();
  EXPECT_EQ(http_get(admin.port(), "/healthz").status, 200);
}

TEST(ObsHttp, ReadyzRequiresEveryComponentReady) {
  Health health;
  auto& component = health.component("stage");
  AdminOptions options;
  options.health = &health;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  auto readyz = http_get(admin.port(), "/readyz");
  EXPECT_EQ(readyz.status, 503);
  EXPECT_EQ(readyz.body, "{\"ready\": false}\n");

  component.set_ready(true);
  readyz = http_get(admin.port(), "/readyz");
  EXPECT_EQ(readyz.status, 200);
  EXPECT_EQ(readyz.body, "{\"ready\": true}\n");
}

TEST(ObsHttp, EndpointsAnswer503WithoutAttachedSinks) {
  AdminServer admin(AdminOptions{});
  ASSERT_TRUE(admin.start()) << admin.last_error();
  EXPECT_EQ(http_get(admin.port(), "/metrics").status, 503);
  EXPECT_EQ(http_get(admin.port(), "/healthz").status, 503);
  EXPECT_EQ(http_get(admin.port(), "/readyz").status, 503);
  EXPECT_EQ(http_get(admin.port(), "/stats").status, 200);
  EXPECT_EQ(http_get(admin.port(), "/tsdb/series").status, 503);
  EXPECT_EQ(http_get(admin.port(), "/tsdb/query?series=x").status, 503);
  EXPECT_EQ(http_get(admin.port(), "/debug/flightrecorder").status, 503);
  // /dash is static HTML: always served.
  EXPECT_EQ(http_get(admin.port(), "/dash").status, 200);
}

TEST(ObsHttp, ProtocolErrorPaths) {
  Server server(ServerOptions{});
  server.handle("/ok", [](const Request&) { return Response{}; });
  ASSERT_TRUE(server.start()) << server.last_error();

  EXPECT_EQ(http_get(server.port(), "/missing").status, 404);
  EXPECT_EQ(http_raw(server.port(),
                     "POST /ok HTTP/1.1\r\nHost: t\r\n\r\n")
                .status,
            405);
  EXPECT_EQ(http_get(server.port(), "/ok").status, 200);

  // HEAD gets the headers with an empty body.
  const auto head =
      http_raw(server.port(), "HEAD /ok HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
}

TEST(ObsHttp, OversizedRequestGets413) {
  ServerOptions options;
  options.max_request_bytes = 64;
  Server server(options);
  server.handle("/", [](const Request&) { return Response{}; });
  ASSERT_TRUE(server.start()) << server.last_error();

  const std::string request = "GET /" + std::string(128, 'a') +
                              " HTTP/1.1\r\nHost: t\r\n\r\n";
  EXPECT_EQ(http_raw(server.port(), request).status, 413);
}

TEST(ObsHttp, StalledRequestTimesOutWith408) {
  ServerOptions options;
  options.read_timeout = 100 * util::kMillisecond;
  Server server(options);
  server.handle("/", [](const Request&) { return Response{}; });
  ASSERT_TRUE(server.start()) << server.last_error();

  const int fd = connect_to(server.port());
  send_all(fd, "GET / HTTP/1.1\r\n");  // never finishes the head
  const auto response = parse_response(read_until_eof(fd));
  ::close(fd);
  EXPECT_EQ(response.status, 408);
}

TEST(ObsHttp, ConnectionCapRejectsWith503) {
  ServerOptions options;
  options.max_connections = 0;  // every connection is over the cap
  Server server(options);
  server.handle("/", [](const Request&) { return Response{}; });
  ASSERT_TRUE(server.start()) << server.last_error();

  EXPECT_EQ(http_get(server.port(), "/").status, 503);
  EXPECT_GE(server.connections_rejected(), 1u);
}

TEST(ObsHttp, EventsStreamReplaysBacklogAndTailsLiveAlerts) {
  EventLog events;
  DetectorEvent stored;
  stored.type = DetectorEventType::kAlertFired;
  stored.victim = "44.0.0.1";
  events.emit(stored);

  AdminOptions options;
  options.events = &events;
  options.events_poll = 20 * util::kMillisecond;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  const int fd = connect_to(admin.port());
  send_all(fd, "GET /events?backlog=10 HTTP/1.1\r\nHost: t\r\n\r\n");

  // Read until both the replayed and the live line have arrived.
  std::string raw;
  char buffer[4096];
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  bool live_emitted = false;
  while (raw.find("44.0.0.2") == std::string::npos) {
    if (!live_emitted && raw.find("44.0.0.1") != std::string::npos) {
      // Backlog arrived: fire a live alert mid-stream.
      DetectorEvent live;
      live.type = DetectorEventType::kAlertFired;
      live.victim = "44.0.0.2";
      events.emit(live);
      live_emitted = true;
    }
    const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
    ASSERT_GT(n, 0) << "stream stalled before the live alert arrived";
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const auto head_end = raw.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_NE(raw.find("Transfer-Encoding: chunked"), std::string::npos);
  const auto body = decode_chunked(raw.substr(head_end + 4));
  EXPECT_NE(body.find("\"victim\": \"44.0.0.1\""), std::string::npos);
  EXPECT_NE(body.find("\"victim\": \"44.0.0.2\""), std::string::npos);
  admin.stop();
}

/// Store + sampler driven by a manual clock: every /tsdb body below is
/// byte-deterministic.
struct TsdbFixture {
  MetricsRegistry metrics;
  EventLog events;
  TimeSeriesStore store;
  std::uint64_t now_us = 1'000'000'000;  // t = 1000 s

  TsdbFixture() {
    auto& packets = metrics.counter("pipeline.packets");
    SamplerConfig config;
    config.metrics = &metrics;
    config.store = &store;
    config.events = &events;
    config.clock = [this] { return now_us; };
    config.self_metrics = false;
    Sampler sampler(config);

    packets.add(100);
    sampler.sample_once();
    DetectorEvent event;
    event.type = DetectorEventType::kAlertFired;
    event.time = util::Timestamp{} + 999 * util::kSecond;
    event.victim = "44.1.2.3";
    event.packets = 5000;
    event.peak_pps = 250.0;
    events.emit(event);
    now_us += 1'000'000;
    packets.add(400);
    sampler.sample_once();
  }
};

TEST(ObsHttp, TsdbRoutesServeGoldenBodies) {
  TsdbFixture fixture;
  AdminOptions options;
  options.tsdb = &fixture.store;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  const auto series = http_get(admin.port(), "/tsdb/series");
  EXPECT_EQ(series.status, 200);
  EXPECT_EQ(series.headers.at("content-type"), "application/json");
  EXPECT_EQ(series.body,
            "{\"tiers\": [{\"step_us\": 1000000, \"buckets\": 600},"
            " {\"step_us\": 10000000, \"buckets\": 720},"
            " {\"step_us\": 60000000, \"buckets\": 1440}], \"series\":"
            " [{\"name\": \"pipeline.packets\", \"kind\": \"counter\","
            " \"samples\": 2, \"first_us\": 1000000000,"
            " \"last_us\": 1001000000}], \"dropped_series\": 0}\n");

  const auto query = http_get(
      admin.port(),
      "/tsdb/query?series=pipeline.packets&from=999000000&to=1002000000");
  EXPECT_EQ(query.status, 200);
  EXPECT_EQ(query.body,
            "{\"series\": \"pipeline.packets\", \"kind\": \"counter\","
            " \"step_us\": 1000000, \"columns\": [\"t_us\", \"min\","
            " \"max\", \"sum\", \"count\", \"last\"], \"points\":"
            " [[1000000000, 100, 100, 100, 1, 100],"
            " [1001000000, 500, 500, 500, 1, 500]], \"annotations\":"
            " [{\"t_us\": 1001000000, \"event_time_us\": 999000000,"
            " \"kind\": \"alert_fired\", \"victim\": \"44.1.2.3\","
            " \"packets\": 5000, \"peak_pps\": 250.000}]}\n");
}

TEST(ObsHttp, TsdbQueryParamErrorsAreStructured) {
  TsdbFixture fixture;
  AdminOptions options;
  options.tsdb = &fixture.store;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  // Missing series name.
  const auto missing = http_get(admin.port(), "/tsdb/query");
  EXPECT_EQ(missing.status, 400);
  EXPECT_EQ(missing.body,
            "{\"error\": {\"param\": \"series\", \"reason\": \"required\","
            " \"value\": \"\"}}\n");
  // Malformed numerics, one per parameter.
  const auto bad_from =
      http_get(admin.port(), "/tsdb/query?series=x&from=abc");
  EXPECT_EQ(bad_from.status, 400);
  EXPECT_EQ(bad_from.body,
            "{\"error\": {\"param\": \"from\", \"reason\":"
            " \"not an unsigned integer\", \"value\": \"abc\"}}\n");
  EXPECT_EQ(http_get(admin.port(), "/tsdb/query?series=x&to=-5").status,
            400);
  EXPECT_EQ(http_get(admin.port(), "/tsdb/query?series=x&step=1.5").status,
            400);
  // Reversed range.
  const auto reversed = http_get(
      admin.port(), "/tsdb/query?series=pipeline.packets&from=9&to=3");
  EXPECT_EQ(reversed.status, 400);
  EXPECT_EQ(reversed.body,
            "{\"error\": {\"param\": \"from\", \"reason\":"
            " \"exceeds to (reversed range)\", \"value\": \"9\"}}\n");
  // Unknown series: structured 404.
  const auto unknown = http_get(admin.port(), "/tsdb/query?series=nope");
  EXPECT_EQ(unknown.status, 404);
  EXPECT_EQ(unknown.body,
            "{\"error\": {\"param\": \"series\", \"reason\":"
            " \"unknown series\", \"value\": \"nope\"}}\n");
  // An empty in-retention range is a 200 with no points, not an error.
  const auto empty = http_get(
      admin.port(),
      "/tsdb/query?series=pipeline.packets&from=1002000000&to=1003000000");
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("\"points\": []"), std::string::npos);
}

TEST(ObsHttp, EventsBacklogParamValidatedBeforeStreaming) {
  EventLog events;
  AdminOptions options;
  options.events = &events;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  // A malformed backlog is rejected with the uniform 400 shape instead
  // of a chunked 200 that can no longer carry a status.
  const auto bad = http_get(admin.port(), "/events?backlog=notanumber");
  EXPECT_EQ(bad.status, 400);
  EXPECT_EQ(bad.body,
            "{\"error\": {\"param\": \"backlog\", \"reason\":"
            " \"not an unsigned integer\", \"value\": \"notanumber\"}}\n");
}

TEST(ObsHttp, DashServesSelfContainedHtml) {
  AdminServer admin(AdminOptions{});
  ASSERT_TRUE(admin.start()) << admin.last_error();
  const auto dash = http_get(admin.port(), "/dash");
  EXPECT_EQ(dash.status, 200);
  EXPECT_EQ(dash.headers.at("content-type"), "text/html; charset=utf-8");
  EXPECT_NE(dash.body.find("<title>quicsand dash</title>"),
            std::string::npos);
  EXPECT_NE(dash.body.find("/tsdb/query"), std::string::npos);
  // Self-contained: no external scripts, stylesheets, or fonts.
  EXPECT_EQ(dash.body.find("http://"), std::string::npos);
  EXPECT_EQ(dash.body.find("https://"), std::string::npos);
}

TEST(ObsHttp, FlightRecorderRouteDumpsDeterministicBundle) {
  TsdbFixture fixture;
  FlightRecorderConfig recorder_config;
  recorder_config.store = &fixture.store;
  FlightRecorder recorder(recorder_config);

  AdminOptions options;
  options.tsdb = &fixture.store;
  options.flight = &recorder;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  const auto bundle = http_get(admin.port(), "/debug/flightrecorder");
  EXPECT_EQ(bundle.status, 200);
  EXPECT_EQ(bundle.headers.at("content-type"), "application/x-ndjson");
  EXPECT_EQ(bundle.body,
            "{\"type\": \"meta\", \"now_us\": 1001000000, \"from_us\":"
            " 881000000, \"window_s\": 120, \"series\": 1}\n"
            "{\"type\": \"sample\", \"series\": \"pipeline.packets\","
            " \"kind\": \"counter\", \"t_us\": 1000000000, \"min\": 100,"
            " \"max\": 100, \"sum\": 100, \"count\": 1, \"last\": 100}\n"
            "{\"type\": \"sample\", \"series\": \"pipeline.packets\","
            " \"kind\": \"counter\", \"t_us\": 1001000000, \"min\": 500,"
            " \"max\": 500, \"sum\": 500, \"count\": 1, \"last\": 500}\n"
            "{\"type\": \"annotation\", \"t_us\": 1001000000,"
            " \"event_time_us\": 999000000, \"kind\": \"alert_fired\","
            " \"victim\": \"44.1.2.3\", \"packets\": 5000,"
            " \"peak_pps\": 250.000}\n");
  // Identical on every scrape while the store is quiet.
  EXPECT_EQ(http_get(admin.port(), "/debug/flightrecorder").body,
            bundle.body);
}

TEST(ObsHttp, StatsReportRatesFromTheStore) {
  TsdbFixture fixture;
  AdminOptions options;
  options.metrics = &fixture.metrics;
  options.tsdb = &fixture.store;
  options.clock = [] { return std::uint64_t{5'000'000}; };
  options.thread_count = [] { return std::int64_t{1}; };
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  const auto stats = http_get(admin.port(), "/stats");
  EXPECT_EQ(stats.status, 200);
  // 100 -> 500 over one second of sample clock: 400/s, from history,
  // independent of the /stats uptime clock.
  EXPECT_NE(stats.body.find(
                "\"rates_per_s\": {\"pipeline.packets\": 400.000}"),
            std::string::npos);
}

TEST(ObsHttp, ConcurrentScrapesDuringMetricWrites) {
  MetricsRegistry metrics;
  auto& counter = metrics.counter("race.counter");
  auto& histogram = metrics.histogram("race.hist", {10, 100});
  AdminOptions options;
  options.metrics = &metrics;
  AdminServer admin(std::move(options));
  ASSERT_TRUE(admin.start()) << admin.last_error();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.add();
        histogram.observe(i++ % 128);
      }
    });
  }

  std::vector<std::thread> scrapers;
  std::atomic<int> bad_responses{0};
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const auto response = http_get(admin.port(), "/metrics");
        if (response.status != 200) bad_responses.fetch_add(1);
        expect_valid_prometheus(response.body);
      }
    });
  }
  for (auto& thread : scrapers) thread.join();
  stop.store(true);
  for (auto& thread : writers) thread.join();
  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_GT(counter.value(), 0u);
}

}  // namespace
}  // namespace quicsand::obs::http
