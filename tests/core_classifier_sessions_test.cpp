#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/sessions.hpp"
#include "net/headers.hpp"
#include "quic/packets.hpp"
#include "util/rng.hpp"

namespace quicsand::core {
namespace {

const net::Ipv4Address kTelescopeAddr =
    net::Ipv4Address::from_octets(44, 1, 2, 3);
const net::Ipv4Address kOutside =
    net::Ipv4Address::from_octets(142, 250, 1, 1);

// All synthetic packets are timed relative to the epoch origin.
constexpr util::Timestamp kT0{};

util::Rng& rng() {
  static util::Rng instance(1234);
  return instance;
}

net::RawPacket quic_request(util::Timestamp t,
                            net::Ipv4Address src = kOutside,
                            std::uint16_t sport = 55555) {
  const auto ctx = quic::HandshakeContext::random(1, rng());
  const auto payload = quic::build_client_initial(
      ctx, "example.org", rng(), quic::CryptoFidelity::kFast);
  net::Ipv4Header ip;
  ip.src = src;
  ip.dst = kTelescopeAddr;
  return {t, net::build_udp(ip, sport, 443, payload)};
}

net::RawPacket quic_response(util::Timestamp t,
                             net::Ipv4Address src = kOutside,
                             net::Ipv4Address dst = kTelescopeAddr,
                             std::uint16_t dport = 40000,
                             std::uint32_t version = 1) {
  const auto ctx = quic::HandshakeContext::random(version, rng());
  const auto payload = quic::build_server_initial_handshake(
      ctx, rng(), quic::CryptoFidelity::kFast);
  net::Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  return {t, net::build_udp(ip, 443, dport, payload)};
}

TEST(ClassifierTest, QuicRequestAndResponse) {
  Classifier classifier({});
  const auto request = classifier.classify(quic_request(kT0));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->cls, TrafficClass::kQuicRequest);
  EXPECT_EQ(request->quic_version, 1u);
  EXPECT_EQ(request->quic_packet_count, 1);
  EXPECT_FALSE(request->is_research);

  const auto response = classifier.classify(quic_response(kT0));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->cls, TrafficClass::kQuicResponse);
  EXPECT_EQ(response->quic_packet_count, 2);  // coalesced Initial+Handshake
  EXPECT_TRUE(response->has_scid);
  EXPECT_NE(response->scid_hash, 0u);
  EXPECT_EQ(response->kind_counts[static_cast<std::size_t>(
                quic::QuicPacketKind::kInitial)],
            1);
  EXPECT_EQ(response->kind_counts[static_cast<std::size_t>(
                quic::QuicPacketKind::kHandshake)],
            1);
}

TEST(ClassifierTest, ResearchPrefixFlagging) {
  ClassifierConfig config;
  config.research_prefixes.push_back(
      *net::Ipv4Prefix::parse("138.246.0.0/16"));
  Classifier classifier(config);
  const auto flagged = classifier.classify(
      quic_request(kT0, net::Ipv4Address::from_octets(138, 246, 0, 32)));
  ASSERT_TRUE(flagged.has_value());
  EXPECT_TRUE(flagged->is_research);
  EXPECT_EQ(classifier.stats().research, 1u);
  const auto normal = classifier.classify(quic_request(kT0));
  EXPECT_FALSE(normal->is_research);
  EXPECT_EQ(classifier.stats().sanitized_quic(), 1u);
}

TEST(ClassifierTest, NonQuicUdp443Rejected) {
  Classifier classifier({});
  net::Ipv4Header ip;
  ip.src = kOutside;
  ip.dst = kTelescopeAddr;
  const std::vector<std::uint8_t> dns = {0x12, 0x34, 0x01, 0x00,
                                         0x00, 0x01, 0x00, 0x00};
  const auto record =
      classifier.classify({kT0, net::build_udp(ip, 443, 53000, dns)});
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->cls, TrafficClass::kOther);
  EXPECT_EQ(classifier.stats().quic_port_rejects, 1u);
}

TEST(ClassifierTest, UdpOffPort443IsOther) {
  Classifier classifier({});
  net::Ipv4Header ip;
  ip.src = kOutside;
  ip.dst = kTelescopeAddr;
  const auto record = classifier.classify(
      {kT0, net::build_udp(ip, 5000, 6000, std::vector<std::uint8_t>{0xc0})});
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->cls, TrafficClass::kOther);
  EXPECT_EQ(classifier.stats().quic_port_rejects, 0u);
}

TEST(ClassifierTest, TcpFlagClassification) {
  Classifier classifier({});
  net::Ipv4Header ip;
  ip.src = kOutside;
  ip.dst = kTelescopeAddr;
  net::TcpInfo syn;
  syn.src_port = 4000;
  syn.dst_port = 443;
  syn.flags = net::TcpFlags::kSyn;
  EXPECT_EQ(classifier.classify({kT0, net::build_tcp(ip, syn)})->cls,
            TrafficClass::kTcpRequest);
  net::TcpInfo synack = syn;
  synack.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  EXPECT_EQ(classifier.classify({kT0, net::build_tcp(ip, synack)})->cls,
            TrafficClass::kTcpBackscatter);
  net::TcpInfo rst = syn;
  rst.flags = net::TcpFlags::kRst;
  EXPECT_EQ(classifier.classify({kT0, net::build_tcp(ip, rst)})->cls,
            TrafficClass::kTcpBackscatter);
  net::TcpInfo ack = syn;
  ack.flags = net::TcpFlags::kAck;
  EXPECT_EQ(classifier.classify({kT0, net::build_tcp(ip, ack)})->cls,
            TrafficClass::kOther);
}

TEST(ClassifierTest, IcmpClassification) {
  Classifier classifier({});
  net::Ipv4Header ip;
  ip.src = kOutside;
  ip.dst = kTelescopeAddr;
  net::IcmpInfo echo_reply;
  echo_reply.type = 0;
  EXPECT_EQ(classifier.classify({kT0, net::build_icmp(ip, echo_reply)})->cls,
            TrafficClass::kIcmpBackscatter);
  net::IcmpInfo unreachable;
  unreachable.type = 3;
  unreachable.code = 1;
  EXPECT_EQ(classifier.classify({kT0, net::build_icmp(ip, unreachable)})->cls,
            TrafficClass::kIcmpBackscatter);
  net::IcmpInfo echo_request;
  echo_request.type = 8;
  EXPECT_EQ(classifier.classify({kT0, net::build_icmp(ip, echo_request)})->cls,
            TrafficClass::kOther);
}

TEST(ClassifierTest, UndecodableCounted) {
  Classifier classifier({});
  EXPECT_FALSE(classifier.classify({kT0, {0x45, 0x00}}).has_value());
  EXPECT_EQ(classifier.stats().undecodable, 1u);
  EXPECT_EQ(classifier.stats().total, 1u);
}

std::vector<PacketRecord> classify_all(std::vector<net::RawPacket> packets) {
  Classifier classifier({});
  std::vector<PacketRecord> records;
  for (const auto& packet : packets) {
    const auto record = classifier.classify(packet);
    if (record) records.push_back(*record);
  }
  return records;
}

TEST(SessionsTest, TimeoutSplitsSessions) {
  const auto src = net::Ipv4Address::from_octets(98, 0, 0, 1);
  const auto records = classify_all({
      quic_request(kT0, src),
      quic_request(kT0 + util::kMinute, src),
      quic_request(kT0 + 10 * util::kMinute, src),  // > 5 min gap: new session
  });
  const auto sessions =
      build_sessions(records, 5 * util::kMinute, quic_request_filter());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].packets.count(), 2u);
  EXPECT_EQ(sessions[1].packets.count(), 1u);
  EXPECT_EQ(sessions[0].duration(), util::kMinute);
}

TEST(SessionsTest, SourcesAreIndependent) {
  const auto a = net::Ipv4Address::from_octets(98, 0, 0, 1);
  const auto b = net::Ipv4Address::from_octets(98, 0, 0, 2);
  const auto records = classify_all({
      quic_request(kT0, a),
      quic_request(kT0 + util::kSecond, b),
      quic_request(kT0 + 2 * util::kSecond, a),
  });
  const auto sessions =
      build_sessions(records, 5 * util::kMinute, quic_request_filter());
  ASSERT_EQ(sessions.size(), 2u);
}

TEST(SessionsTest, AggregatesDistinctCountsAndVersions) {
  const auto victim = net::Ipv4Address::from_octets(142, 250, 1, 1);
  std::vector<net::RawPacket> packets;
  // Same victim, 3 distinct telescope peers, 4 ports, draft-29.
  packets.push_back(quic_response(
      kT0, victim, net::Ipv4Address::from_octets(44, 0, 0, 1), 1000,
      0xff00001d));
  packets.push_back(quic_response(
      kT0 + util::kSecond, victim, net::Ipv4Address::from_octets(44, 0, 0, 1),
      1001, 0xff00001d));
  packets.push_back(quic_response(
      kT0 + 2 * util::kSecond, victim, net::Ipv4Address::from_octets(44, 0, 0, 2),
      1000, 0xff00001d));
  packets.push_back(quic_response(
      kT0 + 3 * util::kSecond, victim, net::Ipv4Address::from_octets(44, 0, 0, 3),
      1002, 0xff00001d));
  const auto records = classify_all(std::move(packets));
  const auto sessions =
      build_sessions(records, 5 * util::kMinute, quic_response_filter());
  ASSERT_EQ(sessions.size(), 1u);
  const auto& session = sessions[0];
  EXPECT_EQ(session.packets.count(), 4u);
  EXPECT_EQ(session.peers.size(), 3u);
  EXPECT_EQ(session.peer_ports.size(), 4u);
  EXPECT_EQ(session.scids.size(), 4u);  // fresh SCID per handshake
  EXPECT_EQ(session.dominant_version(), 0xff00001du);
  EXPECT_EQ(session.kind_counts[static_cast<std::size_t>(
                quic::QuicPacketKind::kInitial)],
            4u);
}

TEST(SessionsTest, PeakPpsUsesMinuteBins) {
  const auto src = net::Ipv4Address::from_octets(98, 0, 0, 9);
  std::vector<net::RawPacket> packets;
  // 120 packets in minute 0, 6 in minute 2.
  for (int i = 0; i < 120; ++i) {
    packets.push_back(quic_request(kT0 + i * util::kSecond / 2, src));
  }
  for (int i = 0; i < 6; ++i) {
    packets.push_back(
        quic_request(kT0 + (2 * util::kMinute) + (i * util::kSecond), src));
  }
  const auto records = classify_all(std::move(packets));
  const auto sessions =
      build_sessions(records, 5 * util::kMinute, quic_request_filter());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_NEAR(sessions[0].peak_pps().count(), 2.0, 0.01);
}

TEST(SessionsTest, FiltersSeparateClasses) {
  const auto records = classify_all({
      quic_request(kT0),
      quic_response(kT0 + util::kSecond,
                    net::Ipv4Address::from_octets(157, 240, 1, 1)),
  });
  EXPECT_EQ(
      build_sessions(records, util::kMinute, quic_request_filter()).size(),
      1u);
  EXPECT_EQ(
      build_sessions(records, util::kMinute, quic_response_filter()).size(),
      1u);
  EXPECT_EQ(build_sessions(records, util::kMinute,
                           common_backscatter_filter())
                .size(),
            0u);
}

TEST(SessionsTest, TimeoutSweepMatchesBuildSessions) {
  const auto src = net::Ipv4Address::from_octets(98, 0, 0, 1);
  std::vector<net::RawPacket> packets;
  for (int i = 0; i < 20; ++i) {
    packets.push_back(quic_request(kT0 + i * 3 * util::kMinute, src));
  }
  packets.push_back(
      quic_request(kT0 + 100 * util::kMinute,
                   net::Ipv4Address::from_octets(98, 0, 0, 2)));
  const auto records = classify_all(std::move(packets));

  const util::Duration timeouts[] = {util::kMinute, 5 * util::kMinute,
                                     60 * util::kMinute};
  const auto sweep =
      timeout_sweep(records, timeouts, quic_request_filter());
  ASSERT_EQ(sweep.size(), 3u);
  for (const auto& [timeout, count] : sweep) {
    EXPECT_EQ(count,
              build_sessions(records, timeout, quic_request_filter()).size())
        << "timeout " << timeout.count();
  }
  // Monotone decreasing in the timeout.
  EXPECT_GE(sweep[0].second, sweep[1].second);
  EXPECT_GE(sweep[1].second, sweep[2].second);
}

TEST(SessionsTest, TrafficClassNames) {
  EXPECT_STREQ(traffic_class_name(TrafficClass::kQuicRequest),
               "quic-request");
  EXPECT_STREQ(traffic_class_name(TrafficClass::kIcmpBackscatter),
               "icmp-backscatter");
}

}  // namespace
}  // namespace quicsand::core
