#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace quicsand::util {
namespace {

TEST(Cdf, AtComputesFractionAtOrBelow) {
  Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99), 1.0);
}

TEST(Cdf, QuantileInterpolates) {
  Cdf cdf({0, 10});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(Cdf, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Cdf({1, 2, 3}).median(), 2.0);
  EXPECT_DOUBLE_EQ(Cdf({1, 2, 3, 4}).median(), 2.5);
}

TEST(Cdf, AddKeepsSorted) {
  Cdf cdf;
  cdf.add(5);
  cdf.add(1);
  cdf.add(3);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
}

TEST(Cdf, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_THROW(static_cast<void>(cdf.quantile(0.5)), std::logic_error);
}

TEST(Cdf, SeriesHasRequestedPoints) {
  Cdf cdf({1, 2, 3, 4, 5});
  auto s = cdf.series(4);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.front().second, 0.0);
  EXPECT_DOUBLE_EQ(s.back().second, 1.0);
  EXPECT_DOUBLE_EQ(s.front().first, 1.0);
  EXPECT_DOUBLE_EQ(s.back().first, 5.0);
}

TEST(Cdf, MeanIsArithmeticMean) {
  EXPECT_DOUBLE_EQ(Cdf({2, 4, 6}).mean(), 4.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0, 10, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-5);    // clamped to bin 0
  h.add(100);   // clamped to bin 4
  h.add(4.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0, 1, 1);
  h.add(0.5, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.counts()[0], 10u);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
}

TEST(MedianOf, HandlesUnsortedInput) {
  const double odd[] = {9, 1, 5};
  EXPECT_DOUBLE_EQ(median_of(odd), 5.0);
  const double even[] = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median_of(even), 2.5);
  EXPECT_THROW(median_of({}), std::logic_error);
}

TEST(WithCommas, FormatsGroups) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(92000000), "92,000,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

}  // namespace
}  // namespace quicsand::util
