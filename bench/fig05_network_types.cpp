// Figure 5: source network types of sessions (PeeringDB info_type).
// Requests originate predominantly from eyeball networks; responses come
// almost exclusively from content networks. Also prints the §5.2
// GreyNoise correlation (no benign scanners, ~2.3% tagged malicious) and
// the request-session country mix (BD 34%, US 27%, DZ 8%).
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

std::array<double, asdb::kNetworkTypeCount> type_shares(
    const std::vector<core::Session>& sessions) {
  std::array<double, asdb::kNetworkTypeCount> counts{};
  for (const auto& session : sessions) {
    const auto* info = registry().lookup(session.source);
    const auto type =
        info == nullptr ? asdb::NetworkType::kUnknown : info->type;
    counts[static_cast<std::size_t>(type)] += 1;
  }
  const double total = std::max<double>(1.0, sessions.size());
  for (auto& c : counts) c /= total;
  return counts;
}

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 5: source network types of sessions");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto requests =
      scenario.pipeline->request_sessions(5 * util::kMinute);
  const auto& responses = scenario.analysis.response_sessions;
  std::cout << "request sessions: " << requests.size()
            << "  response sessions: " << responses.size() << "\n";
  compare("request/response session counts (30d paper)", "18k / 26k",
          std::to_string(requests.size()) + " / " +
              std::to_string(responses.size()) + " (scaled window)");

  const auto req_shares = type_shares(requests);
  const auto resp_shares = type_shares(responses);
  util::Table table({"network type", "requests", "responses"});
  for (std::size_t t = 0; t < asdb::kNetworkTypeCount; ++t) {
    table.add_row({asdb::network_type_name(
                       static_cast<asdb::NetworkType>(t)),
                   util::pct(req_shares[t]), util::pct(resp_shares[t])});
  }
  table.print(std::cout);
  compare("requests from eyeballs", "predominant",
          util::pct(req_shares[static_cast<std::size_t>(
              asdb::NetworkType::kEyeball)]));
  compare("responses from content", "almost exclusive",
          util::pct(resp_shares[static_cast<std::size_t>(
              asdb::NetworkType::kContent)]));

  // Average session sizes (paper: requests 11 pkts, responses 44 pkts).
  double req_pkts = 0, resp_pkts = 0;
  for (const auto& s : requests) {
    req_pkts += static_cast<double>(s.packets.count());
  }
  for (const auto& s : responses) {
    resp_pkts += static_cast<double>(s.packets.count());
  }
  compare("mean packets per request session", "11",
          util::fmt(req_pkts / std::max<double>(1, requests.size()), 1));
  compare("mean packets per response session", "44",
          util::fmt(resp_pkts / std::max<double>(1, responses.size()), 1));

  // GreyNoise correlation over request-session sources.
  util::print_heading(std::cout, "GreyNoise correlation (§5.2)");
  std::vector<net::Ipv4Address> sources;
  sources.reserve(requests.size());
  for (const auto& session : requests) sources.push_back(session.source);
  const auto summary = scenario.intel.summarize(sources);
  compare("benign scanners among requesters", "none",
          std::to_string(summary.benign));
  compare("tagged malicious share", "2.3%",
          util::pct(summary.malicious_share()));
  for (const auto& [tag, count] : summary.tag_counts) {
    std::cout << "    tag \"" << tag << "\": " << count << "\n";
  }

  // Country mix of request sessions.
  util::print_heading(std::cout, "Request session origin countries (§5.2)");
  std::map<std::string, std::uint64_t> by_country;
  for (const auto& session : requests) {
    const auto* info = registry().lookup(session.source);
    ++by_country[info == nullptr ? "??" : info->country];
  }
  const double total = std::max<double>(1.0, requests.size());
  compare("Bangladesh", "34%", util::pct(by_country["BD"] / total));
  compare("USA", "27%", util::pct(by_country["US"] / total));
  compare("Algeria", "8%", util::pct(by_country["DZ"] / total));
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
