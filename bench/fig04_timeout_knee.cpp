// Figure 4: influence of the session timeout on the number of detected
// sessions. The paper sweeps 1..60 minutes, observes the knee at ~5
// minutes and uses timeout=inf as the lower bound (one session per
// source).
#include <iostream>
#include <limits>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 4: session count vs timeout threshold");
  print_scale(config);
  const auto scenario = run_scenario(config);

  std::vector<util::Duration> timeouts;
  for (int minutes : {1, 2, 3, 4, 5, 7, 10, 15, 20, 30, 45, 60}) {
    timeouts.push_back(minutes * util::kMinute);
  }
  timeouts.push_back(std::numeric_limits<util::Duration>::max());  // inf
  const auto sweep = scenario.pipeline->session_timeout_sweep(timeouts);

  util::Table table({"timeout", "sessions", "vs 1min"});
  const double base = static_cast<double>(sweep.front().second);
  for (const auto& [timeout, count] : sweep) {
    const bool inf = timeout == std::numeric_limits<util::Duration>::max();
    table.add_row({inf ? "inf (lower bound)"
                       : std::to_string(timeout / util::kMinute) + " min",
                   util::with_commas(count),
                   util::pct(static_cast<double>(count) / base)});
  }
  table.print(std::cout);

  // Knee heuristic: the first timeout where one extra minute removes
  // less than 1% of the 1-minute session count.
  std::size_t knee = sweep.size() - 1;
  for (std::size_t i = 1; i + 1 < sweep.size(); ++i) {
    const double drop =
        static_cast<double>(sweep[i - 1].second - sweep[i].second);
    const double minutes_step = static_cast<double>(
        (sweep[i].first - sweep[i - 1].first) / util::kMinute);
    if (drop / minutes_step < 0.01 * base) {
      knee = i;
      break;
    }
  }
  compare("knee (chosen threshold)", "5 min",
          std::to_string(sweep[knee].first / util::kMinute) + " min");
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
