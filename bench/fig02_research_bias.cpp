// Figure 2: QUIC traffic seen at the telescope — research scanners
// (TUM, RWTH) dwarf every other traffic source. The paper reports 92M
// QUIC packets in April 2021 with 98.5% from the two research projects.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace quicsand::bench {
namespace {

int run() {
  // Figure 2 needs the research passes. Default scale: a /11 telescope
  // over 3 days (set QUICSAND_TELESCOPE_BITS=9 QUICSAND_DAYS=30 for the
  // paper's full /9 x 30d). Research probes per pass scale with the
  // telescope size while event traffic does not, so the research share
  // at /11 is slightly below the /9 value.
  auto config = telescope::ScenarioConfig::april2021(env_days(3), env_seed());
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0),
                      env_telescope_bits(11)};
  // Figure 2 is about QUIC traffic only; skip the TCP/ICMP backscatter.
  config.attacks.common_attacks_per_day = 0;
  util::print_heading(std::cout, "Figure 2: QUIC IBR by traffic source");
  print_scale(config);

  const auto scenario = run_scenario(config);
  const auto& stats = scenario.pipeline->stats();
  const auto quic_total = stats.of(core::TrafficClass::kQuicRequest) +
                          stats.of(core::TrafficClass::kQuicResponse);
  const double research_share =
      quic_total == 0 ? 0
                      : static_cast<double>(stats.research) /
                            static_cast<double>(quic_total);

  // Project the window onto the paper's /9 x 30d vantage point: research
  // probes scale with both window and telescope size, event traffic only
  // with the window.
  const double window_scale = 30.0 / config.days;
  // A short window over- or under-samples the ~5.6-day pass cadence, so
  // research is projected from the configured pass rate rather than the
  // observed (quantized) pass count.
  const double projected_research =
      (config.tum.passes_per_day + config.rwth.passes_per_day) * 30.0 *
      static_cast<double>(std::uint64_t{1} << 23);
  const double projected_other =
      static_cast<double>(quic_total - stats.research) * window_scale;
  const double projected_total = projected_research + projected_other;
  std::cout << "QUIC packets in window: " << util::with_commas(quic_total)
            << "\n";
  compare("total QUIC packets (/9 x 30d projection)", "92,000,000",
          util::with_commas(static_cast<std::uint64_t>(projected_total)));
  compare("research share (this scale)", "-", util::pct(research_share));
  compare("research share (/9 x 30d projection)", "98.5%",
          util::pct(projected_research / projected_total));

  // Hourly series: research vs other, a few representative hours.
  const auto& hourly = scenario.pipeline->hourly();
  util::Table table({"hour (UTC)", "research pkts", "other pkts"});
  const std::size_t hours = hourly.research_quic.size();
  for (std::size_t h = 0; h < hours; h += 4) {
    table.add_row({util::format_utc(config.start + h * util::kHour),
                   util::with_commas(hourly.research_quic[h]),
                   util::with_commas(hourly.other_quic[h])});
  }
  util::print_heading(std::cout, "Packets per hour (every 4th hour)");
  table.print(std::cout);

  std::cout << "\nsingle full-IPv4 pass deposits "
            << util::with_commas(config.telescope.size())
            << " packets into this telescope (paper: 2^23 ~ 8.4M into /9)\n";
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
