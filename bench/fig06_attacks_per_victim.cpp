// Figure 6: CDF of the number of QUIC flood attacks per victim. The
// paper finds 2905 attacks on 394 victims in 30 days, more than half of
// the victims attacked exactly once, and 98% of attacks aimed at known
// QUIC servers from the active-scan hitlist.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/victims.hpp"
#include "net/record_batch.hpp"

namespace quicsand::bench {
namespace {

/// Generation-only throughput: drain the scenario through next_batch()
/// into one reused RecordBatch and discard the packets. Isolates the
/// batched producer from classification/analysis.
double generate_only_seconds(const telescope::ScenarioConfig& config,
                             std::size_t batch_capacity,
                             std::uint64_t* packets_out) {
  telescope::TelescopeGenerator generator(config, registry(), deployment());
  net::RecordBatch batch(batch_capacity, batch_capacity * 1500);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t packets = 0;
  while (generator.next_batch(batch) > 0) packets += batch.size();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (packets_out != nullptr) *packets_out = packets;
  return seconds;
}

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout, "Figure 6: attacks per QUIC flood victim");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto report = core::analyze_victims(scenario.analysis.quic_attacks,
                                            registry(), deployment());
  const double window_scale = 30.0 / config.days;
  compare("QUIC attacks (30d projection)", "2905",
          util::with_commas(static_cast<std::uint64_t>(
              static_cast<double>(report.total_attacks) * window_scale)));
  compare("victims in window", "394 (30d)",
          std::to_string(report.victims.size()));
  compare("victims attacked exactly once", ">50%",
          util::pct(report.single_attack_victim_share()));
  compare("attacks on known QUIC servers", "98%",
          util::pct(report.known_server_share()));

  const util::Cdf cdf(report.attacks_per_victim());
  print_cdf("CDF: attacks per victim", cdf, "attacks");

  util::print_heading(std::cout, "Most-attacked victims (top 5)");
  util::Table table({"victim", "AS", "attacks", "on hitlist"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, report.victims.size());
       ++i) {
    const auto& victim = report.victims[i];
    table.add_row({victim.address.to_string(), victim.as_name,
                   std::to_string(victim.attack_count),
                   victim.known_quic_server ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";

  // Perf-trajectory datapoints (--bench-out / QUICSAND_BENCH_OUT):
  // packets through generate+ingest, records through the analyses.
  const auto packets = scenario.pipeline->stats().total;
  const auto records = scenario.pipeline->records().size();
  append_bench_result(
      {"fig06.generate_ingest", scenario.generate_seconds * 1e3,
       scenario.generate_seconds > 0
           ? static_cast<double>(packets) / scenario.generate_seconds
           : 0,
       env_threads()});
  append_bench_result(
      {"fig06.analyze", scenario.analyze_seconds * 1e3,
       scenario.analyze_seconds > 0
           ? static_cast<double>(records) / scenario.analyze_seconds
           : 0,
       env_threads()});

  // Generation-only datapoint plus a batch-size sweep showing where the
  // arena amortization saturates. Single-threaded by construction.
  {
    std::uint64_t generated = 0;
    const double seconds = generate_only_seconds(config, 4096, &generated);
    append_bench_result(
        {"fig06.generate_only", seconds * 1e3,
         seconds > 0 ? static_cast<double>(generated) / seconds : 0, 1});
    std::cout << "[generate-only " << util::fmt(seconds, 2) << "s, "
              << util::with_commas(generated) << " packets]\n";
    for (const std::size_t capacity : {256, 1024, 16384}) {
      const double sweep_seconds =
          generate_only_seconds(config, capacity, &generated);
      append_bench_result(
          {"fig06.generate_only.batch" + std::to_string(capacity),
           sweep_seconds * 1e3,
           sweep_seconds > 0
               ? static_cast<double>(generated) / sweep_seconds
               : 0,
           1});
    }
  }
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
