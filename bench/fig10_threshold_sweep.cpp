// Figure 10 (Appendix B): sensitivity of the DoS detection to the
// threshold weight w. Every Moore-et-al threshold is multiplied by w;
// the number of detected attacks drops with stricter thresholds while
// the share of content-provider victims stays high — QUIC Initial floods
// target large content infrastructures at every sensitivity level.
// Also reports the excluded (non-attack) session profile from App. B.
#include <iostream>

#include "bench_common.hpp"
#include "core/victims.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 10: DoS threshold-weight sensitivity");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto& sessions = scenario.analysis.response_sessions;
  std::cout << "response sessions analyzed: " << sessions.size() << "\n";

  util::Table table(
      {"w", "attacks", "share of sessions", "content-provider share"});
  for (const double w :
       {0.1, 0.2, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 5.0, 7.0, 10.0}) {
    const auto attacks =
        core::detect_attacks(sessions, core::DosThresholds{}.weighted(w));
    std::uint64_t content = 0;
    for (const auto& attack : attacks) {
      const auto* info = registry().lookup(attack.victim);
      if (info != nullptr && info->type == asdb::NetworkType::kContent) {
        ++content;
      }
    }
    table.add_row(
        {util::fmt(w, 1), std::to_string(attacks.size()),
         util::pct(static_cast<double>(attacks.size()) /
                   std::max<double>(1, sessions.size())),
         attacks.empty()
             ? "-"
             : util::pct(static_cast<double>(content) / attacks.size())});
  }
  table.print(std::cout);

  const auto default_attacks =
      core::detect_attacks(sessions, core::DosThresholds{});
  compare("attack share of response sessions at w=1", "11%",
          util::pct(static_cast<double>(default_attacks.size()) /
                    std::max<double>(1, sessions.size())));
  const auto strict =
      core::detect_attacks(sessions, core::DosThresholds{}.weighted(10));
  compare("attacks remaining at w=10", ">= 5 (nonzero)",
          std::to_string(strict.size()));

  util::print_heading(std::cout, "Excluded sessions at w=1 (Appendix B)");
  const auto excluded = core::summarize_excluded(sessions, {});
  compare("median packets", "11", util::fmt(excluded.median_packets, 0));
  compare("median duration", "7 s",
          util::fmt(excluded.median_duration_s, 0) + " s");
  compare("median intensity", "0.18 max pps",
          util::fmt(excluded.median_peak_pps, 2) + " max pps");
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
