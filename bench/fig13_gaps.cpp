// Figure 13 (Appendix C.3): time gaps between sequential QUIC attacks
// and the nearest TCP/ICMP attack on the same victim. 82% of gaps exceed
// one hour; the longest stretch to weeks — evidence that sequential
// attacks are not part of one coordinated multi-vector event.
#include <iostream>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  // Gaps are bounded by the window, so use a longer default window here.
  LightScenarioOptions options;
  options.days = 10;
  const auto config = light_scenario(options);
  util::print_heading(std::cout,
                      "Figure 13: gaps of sequential QUIC attacks");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto report = core::correlate_attacks(
      scenario.analysis.quic_attacks, scenario.analysis.common_attacks);
  const auto gaps = report.gaps_seconds();
  if (gaps.empty()) {
    std::cout << "no sequential attacks at this scale; raise "
                 "QUICSAND_DAYS\n";
    return 1;
  }
  util::Cdf cdf(gaps);
  std::cout << "sequential QUIC attacks: " << gaps.size() << "\n";
  compare("gaps longer than one hour", "82%",
          util::pct(1.0 - cdf.at(3600.0)));
  compare("mean gap", "36 h",
          util::fmt(cdf.mean() / 3600.0, 1) + " h  (window-capped at " +
              std::to_string(config.days) + "d)");
  compare("maximum gap", "up to 28 d",
          util::format_duration(util::from_seconds(cdf.max())));
  print_cdf("CDF: gap", cdf, "seconds");
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
