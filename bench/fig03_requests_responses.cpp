// Figure 3: sanitized QUIC packets by type. Requests (scans) follow a
// stable diurnal pattern peaking at 6:00 and 18:00 UTC; responses
// (backscatter) are erratic. The paper reports a 15% / 85% split.
// Also prints the §6 message composition of DoS-suspect events
// (~31% Initial / ~57% Handshake).
#include <iostream>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 3: sanitized QUIC packets by type");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto& stats = scenario.pipeline->stats();
  const auto requests = stats.sanitized_requests();
  const auto responses = stats.sanitized_responses();
  const double total = static_cast<double>(requests + responses);
  compare("request share", "15%", util::pct(requests / total));
  compare("response share", "85%", util::pct(responses / total));

  // Representative day: hour-of-day profile averaged over the window.
  const auto& hourly = scenario.pipeline->hourly();
  std::vector<double> req_profile(24, 0), resp_profile(24, 0);
  for (std::size_t h = 0; h < hourly.quic_requests.size(); ++h) {
    req_profile[h % 24] += static_cast<double>(hourly.quic_requests[h]);
    resp_profile[h % 24] += static_cast<double>(hourly.quic_responses[h]);
  }
  util::print_heading(std::cout,
                      "Hour-of-day profile (mean packets/hour)");
  util::Table table({"hour UTC", "requests", "responses"});
  for (int h = 0; h < 24; ++h) {
    table.add_row({std::to_string(h) + ":00",
                   util::fmt(req_profile[static_cast<std::size_t>(h)] /
                                 config.days,
                             0),
                   util::fmt(resp_profile[static_cast<std::size_t>(h)] /
                                 config.days,
                             0)});
  }
  table.print(std::cout);
  const auto peak_6 = req_profile[6];
  const auto trough_0 = req_profile[0];
  const auto peak_18 = req_profile[18];
  compare("diurnal peaks", "6:00 and 18:00 UTC",
          "6:00/0:00 ratio=" + util::fmt(peak_6 / std::max(1.0, trough_0), 2) +
              ", 18:00/0:00 ratio=" +
              util::fmt(peak_18 / std::max(1.0, trough_0), 2));

  // §6 composition over DoS-suspect response sessions.
  std::uint64_t initial = 0, handshake = 0, composition_total = 0;
  for (const auto& attack : scenario.analysis.quic_attacks) {
    const auto& session =
        scenario.analysis.response_sessions[attack.session_index];
    initial += session.kind_counts[static_cast<std::size_t>(
        quic::QuicPacketKind::kInitial)];
    handshake += session.kind_counts[static_cast<std::size_t>(
        quic::QuicPacketKind::kHandshake)];
    for (const auto count : session.kind_counts) composition_total += count;
  }
  util::print_heading(std::cout,
                      "Message composition of DoS-suspect events (§6)");
  if (composition_total > 0) {
    const double n = static_cast<double>(composition_total);
    compare("Initial share", "31%", util::pct(initial / n));
    compare("Handshake share", "57%", util::pct(handshake / n));
    compare("other (short header etc.)", "12%",
            util::pct((n - initial - handshake) / n));
  }
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
