// Figure 8: multi-vector attacks. 51% of QUIC floods run concurrently
// with a TCP/ICMP flood on the same victim, 40% are sequential (same
// victim, disjoint in time, mean gap 36 h), 9% are isolated.
#include <iostream>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout, "Figure 8: multi-vector attack shares");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto report = core::correlate_attacks(
      scenario.analysis.quic_attacks, scenario.analysis.common_attacks);
  std::cout << "QUIC attacks correlated: " << report.total() << "\n";
  compare("concurrent with TCP/ICMP", "51%",
          util::pct(report.share(core::Relation::kConcurrent)));
  compare("sequential to TCP/ICMP", "40%",
          util::pct(report.share(core::Relation::kSequential)));
  compare("isolated (no TCP/ICMP on victim)", "9%",
          util::pct(report.share(core::Relation::kIsolated)));

  const auto gaps = report.gaps_seconds();
  if (!gaps.empty()) {
    compare("mean gap of sequential attacks", "36 h",
            util::fmt(util::Cdf(gaps).mean() / 3600.0, 1) + " h");
  }
  // Cross-check against planner ground truth.
  std::uint64_t planned_concurrent = 0, planned_total = 0;
  for (const auto* attack : scenario.truth.quic_attacks()) {
    ++planned_total;
    if (attack->relation == telescope::PlannedRelation::kConcurrent) {
      ++planned_concurrent;
    }
  }
  util::print_heading(std::cout, "Ground-truth cross-check");
  compare("planned concurrent share", "51%",
          util::pct(static_cast<double>(planned_concurrent) /
                    std::max<double>(1, static_cast<double>(planned_total))));
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
