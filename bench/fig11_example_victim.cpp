// Figure 11 (Appendix C.1): attack timeline for a single victim — one
// concurrent (multi-vector) QUIC+TCP/ICMP attack followed by sequential
// QUIC floods. We select the victim with the richest mixed timeline and
// print it.
#include <iostream>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 11: example victim attack timeline");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto report = core::correlate_attacks(
      scenario.analysis.quic_attacks, scenario.analysis.common_attacks);

  // Pick the victim with at least one concurrent QUIC attack and the
  // most QUIC attacks overall.
  std::unordered_map<std::uint32_t, std::pair<int, int>> per_victim;
  for (const auto& correlation : report.per_attack) {
    const auto& attack =
        scenario.analysis.quic_attacks[correlation.quic_attack_index];
    auto& [quic_count, concurrent_count] =
        per_victim[attack.victim.value()];
    ++quic_count;
    if (correlation.relation == core::Relation::kConcurrent) {
      ++concurrent_count;
    }
  }
  net::Ipv4Address best;
  int best_count = -1;
  for (const auto& [victim, counts] : per_victim) {
    if (counts.second > 0 && counts.first > best_count) {
      best_count = counts.first;
      best = net::Ipv4Address(victim);
    }
  }
  if (best_count < 0) {
    std::cout << "no multi-vector victim at this scale; raise "
                 "QUICSAND_DAYS\n";
    return 1;
  }

  const auto* info = registry().lookup(best);
  std::cout << "victim: " << best.to_string() << " ("
            << (info != nullptr ? info->name : "?") << ")\n";
  const auto timeline = core::victim_timeline(
      best, scenario.analysis.quic_attacks, scenario.analysis.common_attacks);
  util::Table table({"vector", "start (UTC)", "end (UTC)", "duration"});
  for (const auto& entry : timeline) {
    table.add_row({entry.is_quic ? "QUIC" : "TCP/ICMP",
                   util::format_utc(entry.start), util::format_utc(entry.end),
                   util::format_duration(entry.end - entry.start)});
  }
  table.print(std::cout);
  compare("pattern", "1 concurrent multi-vector + sequential QUIC floods",
          std::to_string(best_count) + " QUIC attacks, >=1 concurrent");
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
