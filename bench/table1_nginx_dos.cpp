// Table 1: DoS resiliency of an NGINX-style QUIC server under a client
// Initial flood, replayed at increasing rates with 4 or 128 ("auto")
// workers, with and without RETRY. Availability is the share of requests
// that received an answer. RETRY keeps availability at 100% at the cost
// of one extra round trip.
//
// The replay lengths follow the paper (3,001 .. 500,000 packets). An
// ablation section varies the two knobs the DESIGN calls out: the
// handshake hold time and the per-worker connection limit.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "server/experiment.hpp"
#include "server/replay.hpp"

namespace quicsand::bench {
namespace {

using server::ReplayConfig;
using server::ServerConfig;

struct Row {
  double pps;
  bool retry;
  int workers;
  std::uint64_t packets;
};

ReplayConfig replay_for(const Row& row) {
  ReplayConfig config;
  config.pps = row.pps;
  config.packets = row.packets;
  config.seed = env_seed();
  return config;
}

ServerConfig server_for(const Row& row) {
  ServerConfig config;
  config.workers = row.workers;
  config.connections_per_worker = 1024;  // paper: twice the NGINX default
  config.retry_enabled = row.retry;
  return config;
}

int run() {
  util::print_heading(
      std::cout, "Table 1: NGINX-style QUIC server under Initial flood");
  // The paper's rows, same packet counts (ratio 3001:30001:300001:500000).
  const Row rows[] = {
      {10, false, 4, 3001},        {100, false, 4, 30001},
      {1000, false, 4, 300001},    {1000, false, 128, 300001},
      {10000, false, 128, 500000}, {100000, false, 128, 498991},
      {1000, true, 4, 300001},     {10000, true, 4, 500000},
      {100000, true, 4, 498991},
  };
  // Paper's Service Available column, for side-by-side comparison.
  const char* paper_availability[] = {"100%", "68%",  "7%",  "100%", "26%",
                                      "26%",  "100%", "100%", "100%"};

  util::Table table({"volume [pps]", "retry", "workers", "client [#req]",
                     "server [#resp]", "available", "paper", "extra RTT"});
  std::size_t i = 0;
  for (const Row& row : rows) {
    const auto result = server::run_replay(server_for(row), replay_for(row));
    table.add_row({util::with_commas(static_cast<std::uint64_t>(row.pps)),
                   row.retry ? "yes" : "no",
                   row.workers == 128 ? "auto=128"
                                      : std::to_string(row.workers),
                   util::with_commas(result.stats.client_requests),
                   util::with_commas(result.stats.server_responses),
                   util::pct(result.stats.availability(), 0),
                   paper_availability[i], result.extra_rtt ? "yes" : "no"});
    ++i;
  }
  table.print(std::cout);
  std::cout << "\nmodel: slots = workers x 1024, handshake state held 60 s "
               "(NGINX handshake timeout), RETRY answered statelessly\n";
  std::cout << "paper extrapolation: 27 pps at a /9 -> 27*512 = 13,824 pps "
               "global, i.e. >10k pps floods are ongoing\n";

  // Ablation 1: handshake hold time at 1,000 pps / 4 workers.
  util::print_heading(std::cout,
                      "Ablation: handshake hold time (1000 pps, 4 workers)");
  util::Table hold_table({"hold [s]", "available"});
  for (const int hold_s : {5, 15, 30, 60, 120}) {
    Row row{1000, false, 4, 300001};
    auto server = server_for(row);
    server.handshake_hold = hold_s * util::kSecond;
    const auto result = server::run_replay(server, replay_for(row));
    hold_table.add_row(
        {std::to_string(hold_s), util::pct(result.stats.availability(), 0)});
  }
  hold_table.print(std::cout);

  // Extension (§6 of the paper suggests it; we implement it): adaptive
  // RETRY — stateless answers only above a connection-table load
  // threshold, so normal operation keeps the 1-RTT handshake.
  util::print_heading(
      std::cout,
      "Extension: adaptive RETRY (10000 pps, 4 workers, 500k packets)");
  util::Table adaptive({"mode", "available", "retries sent",
                        "full handshakes", "amplification"});
  for (const auto mode : {server::RetryMode::kOff, server::RetryMode::kAlways,
                          server::RetryMode::kAdaptive}) {
    Row row{10000, false, 4, 500000};
    auto server = server_for(row);
    server.retry_mode = mode;
    const auto result = server::run_replay(server, replay_for(row));
    adaptive.add_row(
        {mode == server::RetryMode::kOff       ? "off"
         : mode == server::RetryMode::kAlways ? "always"
                                              : "adaptive(50%)",
         util::pct(result.stats.availability(), 0),
         util::with_commas(result.stats.retries_sent),
         util::with_commas(result.stats.accepted),
         util::fmt(result.stats.amplification_factor(), 2) + "x"});
  }
  adaptive.print(std::cout);
  std::cout << "anti-amplification: responses to unvalidated clients are "
               "capped at 3x (RFC 9000 §8); the handshake flight stays "
               "below 2x for padded Initials\n";

  // Countermeasure study (§3/§6): per-source rate limiting vs RETRY
  // against a spoofed flood. The spoofed flood defeats the stateful
  // filter entirely; RETRY does not care about sources.
  util::print_heading(std::cout,
                      "Countermeasure study (1000 pps spoofed flood, "
                      "4 workers)");
  util::Table filters({"defense", "available", "filtered pkts"});
  {
    Row row{1000, false, 4, 300001};
    const auto none = server::run_replay(server_for(row), replay_for(row));
    filters.add_row({"none", util::pct(none.stats.availability(), 0),
                     util::with_commas(none.stats.dropped_filtered)});
    auto filtered = server_for(row);
    filtered.per_source_rate_limit = true;
    filtered.per_source_pps = 10;
    const auto with_filter = server::run_replay(filtered, replay_for(row));
    filters.add_row(
        {"per-source rate limit",
         util::pct(with_filter.stats.availability(), 0),
         util::with_commas(with_filter.stats.dropped_filtered)});
    auto retry = server_for(row);
    retry.retry_mode = server::RetryMode::kAlways;
    const auto with_retry = server::run_replay(retry, replay_for(row));
    filters.add_row({"RETRY", util::pct(with_retry.stats.availability(), 0),
                     util::with_commas(with_retry.stats.dropped_filtered)});
  }
  filters.print(std::cout);
  std::cout << "spoofed sources never repeat, so the per-source filter "
               "never fires (paper §3: backtracking spoofed traffic is "
               "challenging)\n";

  // Extension: what the honest clients experience while the flood runs
  // (the mirror image of Table 1's availability; §6's RETRY trade-off).
  util::print_heading(std::cout,
                      "Extension: honest-client experience during a "
                      "1000 pps flood (4 workers, 2 handshakes/s)");
  util::Table clients({"mode", "attempts", "success", "mean RTs"});
  for (const auto mode : {server::RetryMode::kOff, server::RetryMode::kAlways,
                          server::RetryMode::kAdaptive}) {
    server::ClientExperienceConfig experiment;
    experiment.flood = replay_for(Row{1000, false, 4, 120000});
    experiment.legit_rate = 2.0;
    Row row{1000, false, 4, 120000};
    auto server = server_for(row);
    server.retry_mode = mode;
    const auto result = server::run_client_experience(server, experiment);
    clients.add_row(
        {mode == server::RetryMode::kOff       ? "off"
         : mode == server::RetryMode::kAlways ? "always"
                                              : "adaptive(50%)",
         std::to_string(result.attempts),
         util::pct(result.success_rate(), 0),
         util::fmt(result.mean_round_trips(), 2)});
  }
  clients.print(std::cout);
  std::cout << "adaptive RETRY only charges the extra round trip once the "
               "flood has filled half the connection table (§6's "
               "suggestion, implemented)\n";

  // Ablation 2: connection slots per worker at 1,000 pps / 4 workers.
  util::print_heading(
      std::cout, "Ablation: connections per worker (1000 pps, 4 workers)");
  util::Table slot_table({"conns/worker", "available"});
  for (const int slots : {256, 512, 1024, 4096, 16384}) {
    Row row{1000, false, 4, 300001};
    auto server = server_for(row);
    server.connections_per_worker = slots;
    const auto result = server::run_replay(server, replay_for(row));
    slot_table.add_row(
        {std::to_string(slots), util::pct(result.stats.availability(), 0)});
  }
  slot_table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
