// Microbenchmarks (google-benchmark) for the hot paths: the crypto core,
// the QUIC codec/dissector, packet builders and the classifier. These
// bound the throughput of the telescope generator and the analysis
// pipeline.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string_view>
#include <vector>

#include "asdb/registry.hpp"
#include "bench_common.hpp"
#include "util/parse.hpp"
#include "core/classifier.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"
#include "telescope/generator.hpp"
#include "crypto/gcm.hpp"
#include "crypto/sha256.hpp"
#include "net/headers.hpp"
#include "quic/dissector.hpp"
#include "quic/packets.hpp"
#include "quic/ack_tracker.hpp"
#include "quic/gquic.hpp"
#include "quic/transport_params.hpp"
#include "quic/varint.hpp"
#include "server/replay.hpp"
#include "util/rng.hpp"

namespace quicsand {
namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  util::Rng rng(1);
  const auto data = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_AesGcm_Seal1200(benchmark::State& state) {
  util::Rng rng(2);
  const crypto::AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto aad = rng.bytes(40);
  const auto payload = rng.bytes(1200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(nonce, aad, payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1200);
}
BENCHMARK(BM_AesGcm_Seal1200);

void BM_AesGcm_KeySetup(benchmark::State& state) {
  util::Rng rng(3);
  const auto key = rng.bytes(16);
  for (auto _ : state) {
    crypto::AesGcm gcm(key);
    benchmark::DoNotOptimize(&gcm);
  }
}
BENCHMARK(BM_AesGcm_KeySetup);

void BM_Varint_RoundTrip(benchmark::State& state) {
  const std::uint64_t values[] = {37, 15293, 494878333,
                                  151288809941952652ULL};
  for (auto _ : state) {
    util::ByteWriter w(64);
    for (const auto v : values) quic::write_varint(w, v);
    util::ByteReader r(w.view());
    for (std::size_t i = 0; i < 4; ++i) {
      benchmark::DoNotOptimize(quic::read_varint(r));
    }
  }
}
BENCHMARK(BM_Varint_RoundTrip);

void BM_BuildClientInitial(benchmark::State& state) {
  util::Rng rng(4);
  const auto fidelity = state.range(0) == 0 ? quic::CryptoFidelity::kFast
                                            : quic::CryptoFidelity::kFull;
  for (auto _ : state) {
    auto ctx = quic::HandshakeContext::random(1, rng);
    benchmark::DoNotOptimize(
        quic::build_client_initial(ctx, "bench.example", rng, fidelity));
  }
}
BENCHMARK(BM_BuildClientInitial)->Arg(0)->Arg(1);

void BM_Dissect_ClientInitial(benchmark::State& state) {
  util::Rng rng(5);
  auto ctx = quic::HandshakeContext::random(1, rng);
  const auto datagram = quic::build_client_initial(
      ctx, "bench.example", rng, quic::CryptoFidelity::kFast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quic::dissect_udp_payload(datagram));
  }
}
BENCHMARK(BM_Dissect_ClientInitial);

void BM_Dissect_Deep(benchmark::State& state) {
  util::Rng rng(6);
  auto ctx = quic::HandshakeContext::random(1, rng);
  const auto datagram = quic::build_client_initial(
      ctx, "bench.example", rng, quic::CryptoFidelity::kFull);
  quic::DissectOptions options;
  options.decrypt_initials = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quic::dissect_udp_payload(datagram, options));
  }
}
BENCHMARK(BM_Dissect_Deep);

void BM_Classifier(benchmark::State& state) {
  util::Rng rng(7);
  auto ctx = quic::HandshakeContext::random(1, rng);
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(142, 250, 0, 1);
  ip.dst = net::Ipv4Address::from_octets(44, 0, 0, 1);
  const net::RawPacket packet{
      util::Timestamp{}, net::build_udp(ip, 443, 40000,
                        quic::build_server_initial_handshake(
                            ctx, rng, quic::CryptoFidelity::kFast))};
  core::Classifier classifier({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(packet));
  }
}
BENCHMARK(BM_Classifier);

void BM_RegistryLookup(benchmark::State& state) {
  static const auto registry = asdb::AsRegistry::synthetic({}, 9);
  util::Rng rng(8);
  std::vector<net::Ipv4Address> addresses;
  for (int i = 0; i < 1024; ++i) {
    addresses.push_back(net::Ipv4Address(static_cast<std::uint32_t>(
        rng.next())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.lookup(addresses[i++ & 1023]));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_UdpBuildAndDecode(benchmark::State& state) {
  util::Rng rng(10);
  net::Ipv4Header ip;
  ip.src = net::Ipv4Address::from_octets(1, 2, 3, 4);
  ip.dst = net::Ipv4Address::from_octets(44, 0, 0, 1);
  const auto payload = rng.bytes(1200);
  for (auto _ : state) {
    const auto packet = net::build_udp(ip, 443, 40000, payload);
    benchmark::DoNotOptimize(net::decode_ipv4(packet));
  }
}
BENCHMARK(BM_UdpBuildAndDecode);

void BM_GquicParse(benchmark::State& state) {
  util::Rng rng(11);
  const auto packet = quic::build_gquic_server_response(
      quic::ConnectionId(rng.bytes(8)), 42, 300, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quic::parse_gquic_packet(packet));
  }
}
BENCHMARK(BM_GquicParse);

void BM_TransportParamsRoundTrip(benchmark::State& state) {
  util::Rng rng(12);
  const auto params = quic::TransportParameters::typical_client(
      quic::ConnectionId(rng.bytes(8)));
  for (auto _ : state) {
    const auto encoded = quic::encode_transport_parameters(params);
    benchmark::DoNotOptimize(quic::parse_transport_parameters(encoded));
  }
}
BENCHMARK(BM_TransportParamsRoundTrip);

void BM_AckTracker_SparseInsert(benchmark::State& state) {
  util::Rng rng(13);
  for (auto _ : state) {
    quic::AckTracker tracker;
    for (int i = 0; i < 64; ++i) tracker.on_packet(rng.uniform(512));
    benchmark::DoNotOptimize(tracker.build_ack(0));
  }
}
BENCHMARK(BM_AckTracker_SparseInsert);

void BM_ServerSim_Datagram(benchmark::State& state) {
  server::ServerConfig config;
  config.workers = 128;
  server::QuicServerSim sim(config);
  server::ReplayConfig replay;
  replay.packets = 1u << 20;
  replay.pps = 1e9;  // back-to-back
  server::RecordedFlood flood(replay);
  auto record = flood.next();
  for (auto _ : state) {
    if (!record) {
      flood.rewind();
      record = flood.next();
    }
    sim.on_datagram(record->time, record->datagram, record->source);
    record = flood.next();
  }
}
BENCHMARK(BM_ServerSim_Datagram);

// Serial vs parallel end-to-end analysis (classify + hourly binning +
// sessionize + detect) on a one-day cut of the fig06 scenario. Arg(0)
// runs the serial Pipeline; Arg(N) runs ParallelPipeline with N
// shards/threads. items/sec is packets/sec.
struct Fig06Workload {
  std::vector<net::RawPacket> packets;
  core::PipelineOptions options;
};

const Fig06Workload& fig06_workload() {
  static const Fig06Workload workload = [] {
    const auto config =
        bench::light_scenario({.days = 1, .telescope_bits = 18,
                               .common_attacks_per_day = 600});
    Fig06Workload out;
    out.options = bench::pipeline_options(config);
    telescope::TelescopeGenerator generator(config, bench::registry(),
                                            bench::deployment());
    generator.generate([&](const net::RawPacket& packet) {
      out.packets.push_back(packet);
    });
    return out;
  }();
  return workload;
}

void BM_Pipeline_Fig06(benchmark::State& state) {
  const auto& workload = fig06_workload();
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    if (shards == 0) {
      core::Pipeline pipeline(workload.options);
      for (const auto& packet : workload.packets) pipeline.consume(packet);
      benchmark::DoNotOptimize(pipeline.analyze_attacks());
    } else {
      core::ParallelPipeline pipeline(workload.options, shards);
      for (const auto& packet : workload.packets) pipeline.consume(packet);
      benchmark::DoNotOptimize(pipeline.analyze_attacks());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.packets.size()));
  state.SetLabel(state.range(0) == 0 ? "serial" : "parallel");
}
BENCHMARK(BM_Pipeline_Fig06)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same workload with the obs sinks attached (a live metrics registry and
// a tracer) — the acceptance gate for "instrumentation is near-free":
// compare against the matching BM_Pipeline_Fig06 arg; the delta must stay
// under 5% (recorded in EXPERIMENTS.md).
void BM_Pipeline_Fig06_Observed(benchmark::State& state) {
  const auto& workload = fig06_workload();
  const auto shards = static_cast<std::size_t>(state.range(0));
  static obs::MetricsRegistry registry;
  obs::Tracer tracer;
  auto options = workload.options;
  options.obs.metrics = &registry;
  options.obs.tracer = &tracer;
  for (auto _ : state) {
    tracer.clear();  // keep span memory bounded across iterations
    if (shards == 0) {
      core::Pipeline pipeline(options);
      for (const auto& packet : workload.packets) pipeline.consume(packet);
      benchmark::DoNotOptimize(pipeline.analyze_attacks());
    } else {
      core::ParallelPipeline pipeline(options, shards);
      for (const auto& packet : workload.packets) pipeline.consume(packet);
      benchmark::DoNotOptimize(pipeline.analyze_attacks());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.packets.size()));
  state.SetLabel(state.range(0) == 0 ? "serial+obs" : "parallel+obs");
}
BENCHMARK(BM_Pipeline_Fig06_Observed)
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Console output plus the repo's simple perf-trajectory schema: every
// pipeline benchmark run becomes one {name, wall_ms, records/s, threads}
// datapoint for BENCH_pipeline.json (see bench_common.hpp).
class BenchOutReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const auto name = run.benchmark_name();
      if (name.find("BM_Pipeline_") != 0) continue;
      bench::BenchResult result;
      result.name = name;
      result.wall_ms = run.GetAdjustedRealTime();  // Unit(kMillisecond)
      const auto items = run.counters.find("items_per_second");
      result.records_per_s =
          items != run.counters.end() ? static_cast<double>(items->second) : 0;
      // The benchmark arg is the shard count; 0 encodes the serial
      // pipeline, i.e. one thread.
      const auto slash = name.find('/');
      std::uint64_t shards = 0;
      if (slash != std::string::npos) {
        auto digits = name.substr(slash + 1);
        const auto tail = digits.find_first_not_of("0123456789");
        if (tail != std::string::npos) digits = digits.substr(0, tail);
        shards = util::parse_u64(digits).value_or(0);
      }
      result.threads = shards == 0 ? 1 : static_cast<std::size_t>(shards);
      bench::append_bench_result(std::move(result));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace
}  // namespace quicsand

int main(int argc, char** argv) {
  // Peel off the repo's obs flags (--bench-out etc.) before google
  // benchmark sees the rest of the command line.
  std::vector<char*> own{argv[0]};
  std::vector<char*> forwarded{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--bench-out" || arg == "--metrics-out" ||
        arg == "--trace-out") {
      own.push_back(argv[i]);
      if (i + 1 < argc) own.push_back(argv[++i]);
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  quicsand::bench::init(static_cast<int>(own.size()), own.data());
  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc,
                                             forwarded.data())) {
    return 1;
  }
  quicsand::BenchOutReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  quicsand::bench::write_obs_outputs();
  return 0;
}
