#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

namespace quicsand::bench {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  return std::strtoull(value, nullptr, 10);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int env_days(int default_days) {
  return static_cast<int>(
      env_u64("QUICSAND_DAYS", static_cast<std::uint64_t>(default_days)));
}

std::uint64_t env_seed() { return env_u64("QUICSAND_SEED", 2021); }

int env_telescope_bits(int default_bits) {
  return static_cast<int>(env_u64("QUICSAND_TELESCOPE_BITS",
                                  static_cast<std::uint64_t>(default_bits)));
}

std::size_t env_threads() {
  const auto hw = std::thread::hardware_concurrency();
  return static_cast<std::size_t>(
      env_u64("QUICSAND_THREADS", hw == 0 ? 1 : hw));
}

const asdb::AsRegistry& registry() {
  static const auto instance = asdb::AsRegistry::synthetic({}, 2021);
  return instance;
}

const scanner::Deployment& deployment() {
  static const auto instance =
      scanner::Deployment::synthetic(registry(), {}, 2021);
  return instance;
}

telescope::ScenarioConfig light_scenario(
    const LightScenarioOptions& options) {
  auto config = telescope::ScenarioConfig::april2021(env_days(options.days),
                                                     env_seed());
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0),
                      env_telescope_bits(options.telescope_bits)};
  // The paper removes research scans before the event analyses; skipping
  // their generation entirely keeps these binaries fast.
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.common_attacks_per_day = options.common_attacks_per_day;
  return config;
}

core::PipelineOptions pipeline_options(
    const telescope::ScenarioConfig& config) {
  core::PipelineOptions options;
  options.window_start = config.start;
  options.days = config.days;
  options.research_prefixes.push_back(
      registry().prefixes_of(asdb::AsRegistry::kTumScanner).front());
  options.research_prefixes.push_back(
      registry().prefixes_of(asdb::AsRegistry::kRwthScanner).front());
  return options;
}

AnalyzedScenario run_scenario(const telescope::ScenarioConfig& config) {
  AnalyzedScenario result;
  result.config = config;
  result.pipeline = std::make_unique<core::ParallelPipeline>(
      pipeline_options(config), env_threads());

  // Classification overlaps generation on the worker pool; finish()
  // drains it, so the generate timing covers ingest like the serial
  // pipeline's did.
  const auto generate_start = std::chrono::steady_clock::now();
  telescope::TelescopeGenerator generator(config, registry(), deployment());
  while (auto packet = generator.next()) result.pipeline->consume(*packet);
  result.pipeline->finish();
  result.generate_seconds = seconds_since(generate_start);

  const auto analyze_start = std::chrono::steady_clock::now();
  result.truth = generator.ground_truth();
  result.intel = generator.make_intel_db();
  result.analysis = result.pipeline->analyze_attacks();
  result.analyze_seconds = seconds_since(analyze_start);
  return result;
}

void print_scale(const telescope::ScenarioConfig& config) {
  std::cout << "scale: window=" << config.days << "d (paper: 30d)"
            << "  telescope=" << config.telescope.to_string()
            << " (paper: /9)"
            << "  seed=" << config.seed
            << "  threads=" << env_threads() << "\n";
}

void compare(const std::string& metric, const std::string& paper,
             const std::string& measured) {
  std::cout << "  " << metric << ": paper=" << paper
            << "  measured=" << measured << "\n";
}

void print_cdf(const std::string& title, const util::Cdf& cdf,
               const std::string& unit) {
  util::print_heading(std::cout, title);
  if (cdf.empty()) {
    std::cout << "(no samples)\n";
    return;
  }
  util::Table table({"quantile", unit});
  for (const double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.0}) {
    table.add_row({util::pct(q, 0), util::fmt(cdf.quantile(q), 2)});
  }
  table.print(std::cout);
  std::cout << "mean=" << util::fmt(cdf.mean(), 2) << " " << unit
            << "  n=" << cdf.size() << "\n";
}

}  // namespace quicsand::bench
