#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "util/parse.hpp"

namespace quicsand::bench {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  return util::parse_u64(value).value_or(default_value);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ObsOutputs {
  std::string metrics_out;
  std::string trace_out;
  std::string bench_out;
  std::vector<BenchResult> results;
};

ObsOutputs& obs_outputs() {
  static ObsOutputs outputs;
  return outputs;
}

}  // namespace

void init(int argc, char** argv) {
  auto& outputs = obs_outputs();
  if (const char* env = std::getenv("QUICSAND_BENCH_OUT")) {
    outputs.bench_out = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics-out") {
      outputs.metrics_out = value();
    } else if (arg == "--trace-out") {
      outputs.trace_out = value();
    } else if (arg == "--bench-out") {
      outputs.bench_out = value();
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--metrics-out FILE] [--trace-out FILE]"
                   " [--bench-out FILE]\n";
      std::exit(2);
    }
  }
}

obs::MetricsRegistry& metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

obs::Tracer& tracer() {
  static obs::Tracer instance;
  return instance;
}

void append_bench_result(BenchResult result) {
  obs_outputs().results.push_back(std::move(result));
}

void write_obs_outputs() {
  const auto& outputs = obs_outputs();
  if (!outputs.metrics_out.empty()) {
    if (metrics().write_json_file(outputs.metrics_out)) {
      std::cout << "[metrics snapshot written to " << outputs.metrics_out
                << "]\n";
    } else {
      std::cerr << "cannot write " << outputs.metrics_out << "\n";
    }
  }
  if (!outputs.trace_out.empty()) {
    if (tracer().write_chrome_json_file(outputs.trace_out)) {
      std::cout << "[trace written to " << outputs.trace_out
                << " — load in chrome://tracing]\n";
    } else {
      std::cerr << "cannot write " << outputs.trace_out << "\n";
    }
  }
  if (!outputs.bench_out.empty() && !outputs.results.empty()) {
    std::ofstream out(outputs.bench_out, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << outputs.bench_out << "\n";
      return;
    }
    out << "[";
    bool first = true;
    for (const auto& result : outputs.results) {
      out << (first ? "\n" : ",\n");
      first = false;
      std::ostringstream row;
      row.precision(3);
      row << std::fixed;
      row << "  {\"name\": \"" << result.name
          << "\", \"wall_ms\": " << result.wall_ms
          << ", \"records_per_s\": " << result.records_per_s
          << ", \"threads\": " << result.threads << "}";
      out << row.str();
    }
    out << "\n]\n";
    std::cout << "[benchmark datapoints written to " << outputs.bench_out
              << "]\n";
  }
}

int env_days(int default_days) {
  return static_cast<int>(
      env_u64("QUICSAND_DAYS", static_cast<std::uint64_t>(default_days)));
}

std::uint64_t env_seed() { return env_u64("QUICSAND_SEED", 2021); }

int env_telescope_bits(int default_bits) {
  return static_cast<int>(env_u64("QUICSAND_TELESCOPE_BITS",
                                  static_cast<std::uint64_t>(default_bits)));
}

std::size_t env_threads() {
  const auto hw = std::thread::hardware_concurrency();
  return static_cast<std::size_t>(
      env_u64("QUICSAND_THREADS", hw == 0 ? 1 : hw));
}

const asdb::AsRegistry& registry() {
  static const auto instance = asdb::AsRegistry::synthetic({}, 2021);
  return instance;
}

const scanner::Deployment& deployment() {
  static const auto instance =
      scanner::Deployment::synthetic(registry(), {}, 2021);
  return instance;
}

telescope::ScenarioConfig light_scenario(
    const LightScenarioOptions& options) {
  auto config = telescope::ScenarioConfig::april2021(env_days(options.days),
                                                     env_seed());
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0),
                      env_telescope_bits(options.telescope_bits)};
  // The paper removes research scans before the event analyses; skipping
  // their generation entirely keeps these binaries fast.
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.common_attacks_per_day = options.common_attacks_per_day;
  return config;
}

core::PipelineOptions pipeline_options(
    const telescope::ScenarioConfig& config) {
  core::PipelineOptions options;
  options.window_start = config.start;
  options.days = config.days;
  options.research_prefixes.push_back(
      registry().prefixes_of(asdb::AsRegistry::kTumScanner).front());
  options.research_prefixes.push_back(
      registry().prefixes_of(asdb::AsRegistry::kRwthScanner).front());
  return options;
}

AnalyzedScenario run_scenario(const telescope::ScenarioConfig& config) {
  AnalyzedScenario result;
  result.config = config;
  auto options = pipeline_options(config);
  // Every harness feeds the process-wide sinks; writing the files is
  // opt-in via --metrics-out/--trace-out (see write_obs_outputs).
  options.obs.metrics = &metrics();
  options.obs.tracer = &tracer();
  result.pipeline =
      std::make_unique<core::ParallelPipeline>(options, env_threads());

  // Classification overlaps generation on the worker pool; finish()
  // drains it, so the generate timing covers ingest like the serial
  // pipeline's did.
  const auto generate_start = std::chrono::steady_clock::now();
  telescope::TelescopeGenerator generator(config, registry(), deployment());
  {
    obs::Span span(&tracer(), "bench.generate_ingest");
    auto batch = result.pipeline->acquire_batch();
    while (generator.next_batch(batch) > 0) {
      result.pipeline->consume_batch(std::move(batch));
      batch = result.pipeline->acquire_batch();
    }
    result.pipeline->finish();
  }
  result.generate_seconds = seconds_since(generate_start);

  const auto analyze_start = std::chrono::steady_clock::now();
  {
    obs::Span span(&tracer(), "bench.analyze");
    result.truth = generator.ground_truth();
    result.intel = generator.make_intel_db();
    result.analysis = result.pipeline->analyze_attacks();
  }
  result.analyze_seconds = seconds_since(analyze_start);
  return result;
}

void print_scale(const telescope::ScenarioConfig& config) {
  std::cout << "scale: window=" << config.days << "d (paper: 30d)"
            << "  telescope=" << config.telescope.to_string()
            << " (paper: /9)"
            << "  seed=" << config.seed
            << "  threads=" << env_threads() << "\n";
}

void compare(const std::string& metric, const std::string& paper,
             const std::string& measured) {
  std::cout << "  " << metric << ": paper=" << paper
            << "  measured=" << measured << "\n";
}

void print_cdf(const std::string& title, const util::Cdf& cdf,
               const std::string& unit) {
  util::print_heading(std::cout, title);
  if (cdf.empty()) {
    std::cout << "(no samples)\n";
    return;
  }
  util::Table table({"quantile", unit});
  for (const double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.0}) {
    table.add_row({util::pct(q, 0), util::fmt(cdf.quantile(q), 2)});
  }
  table.print(std::cout);
  std::cout << "mean=" << util::fmt(cdf.mean(), 2) << " " << unit
            << "  n=" << cdf.size() << "\n";
}

}  // namespace quicsand::bench
