// Live-socket ingest benchmark: the full `monitor --live` path (UDP
// loopback -> recvmmsg -> rings -> classifier -> sharded online
// detector) driven at fixed offered rates. Reports achieved pps and the
// drop counters at each rate; each rate becomes one
// `live.ingest_pps.rate_N` datapoint in the BENCH_pipeline.json schema
// (--bench-out / QUICSAND_BENCH_OUT).
//
// At 10 and 1000 pps the run documents pacing fidelity (achieved must
// track offered); at 100k pps it bounds single-socket ingest throughput.
// A second 100k pps pass attaches the 1 s obs::Sampler (the /tsdb
// history bridge) and reports its per-pass cost as `tsdb.sample_cost`
// plus the achieved rate with sampling on — the <1% overhead acceptance
// in EXPERIMENTS.md.
//
// The saturating pass also reports end-to-end detection latency (QSL2
// send stamp of the first admitting packet -> alert callback) as
// `live.detect_latency_p50` / `live.detect_latency_p99` datapoints.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/online_shards.hpp"
#include "net/live/frame.hpp"
#include "net/live/receiver.hpp"
#include "net/live/sender.hpp"
#include "obs/sampler.hpp"
#include "obs/tsdb.hpp"

namespace quicsand {
namespace {

struct RateRun {
  double offered_pps = 0;
  double achieved_pps = 0;
  double elapsed_s = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sample_passes = 0;
  double sample_mean_us = 0;  ///< mean cost of one sampler pass
  std::uint64_t detect_count = 0;  ///< attacks with a detection latency
  double detect_p50_us = 0;
  double detect_p99_us = 0;
};

std::optional<RateRun> run_rate(const std::vector<net::RawPacket>& packets,
                                double rate, std::size_t shards,
                                bool with_sampler = false) {
  // Cap each pass at ~2 s of offered traffic so the slow rates finish.
  const auto budget = static_cast<std::size_t>(rate * 2.0);
  const std::size_t count = std::max<std::size_t>(20, budget);

  obs::MetricsRegistry metrics;
  core::ShardedOnlineDetectorConfig detector_config;
  detector_config.shards = shards;
  // Real wall clock so live.detect_latency_us (first admitting packet's
  // send stamp -> alert) is measured exactly as monitor --live does.
  detector_config.detector.wall_clock = net::live::wall_clock_us;
  detector_config.detector.obs.metrics = &metrics;
  core::ShardedOnlineDetector detector(detector_config);
  std::vector<std::unique_ptr<core::Classifier>> classifiers;
  for (std::size_t i = 0; i < shards; ++i) {
    classifiers.push_back(
        std::make_unique<core::Classifier>(core::ClassifierConfig{}));
  }

  net::live::LiveReceiverConfig receiver_config;
  receiver_config.port = 0;
  receiver_config.shards = shards;
  receiver_config.ring_capacity = std::size_t{1} << 16;
  receiver_config.rcvbuf_bytes = std::size_t{1} << 22;
  receiver_config.obs.metrics = &metrics;
  net::live::LiveReceiver receiver(receiver_config);
  if (!receiver.start([&](std::size_t shard, const net::RawPacket& packet,
                          const net::live::DatagramTiming& timing) {
        if (const auto record = classifiers[shard]->classify(packet)) {
          const core::IngestTiming ingest{timing.send_wall_us,
                                          timing.recv_wall_us};
          detector.consume(shard, *record, &ingest);
        }
      })) {
    std::fprintf(stderr, "live_ingest: sockets unavailable (%s); skipping\n",
                 receiver.last_error().c_str());
    return std::nullopt;
  }

  // The sampler rides along exactly as monitor --live wires it: its own
  // thread, 1 s cadence, snapshotting every registry metric into the
  // retained-history store while ingest is saturated.
  obs::TimeSeriesStore store;
  obs::Sampler sampler([&] {
    obs::SamplerConfig config;
    config.metrics = &metrics;
    config.store = &store;
    return config;
  }());
  if (with_sampler) sampler.start();

  net::live::LiveSenderConfig sender_config;
  sender_config.port = receiver.port();
  sender_config.pps = rate;
  net::live::LiveSender sender(sender_config);
  // Refill the sender's RecordBatch from the pre-materialized stream:
  // the batched sendmmsg path exercised here is exactly flood_lab
  // --send's (QSL2 frames stamped in place, no per-packet allocation).
  std::size_t cursor = 0;
  const auto stats = sender.send_batches([&](net::RecordBatch& batch) {
    if (cursor >= count) return false;
    while (cursor < count) {
      const auto& packet = packets[cursor % packets.size()];
      if (!batch.try_append(packet.timestamp, packet.data)) break;
      ++cursor;
    }
    return true;
  });
  receiver.stop();
  detector.finish();
  if (with_sampler) sampler.stop();

  RateRun run;
  run.offered_pps = rate;
  run.achieved_pps = stats.achieved_pps;
  run.elapsed_s = stats.elapsed_s;
  run.sent = stats.sent;
  run.delivered = receiver.delivered();
  run.dropped = receiver.dropped_ring() + receiver.dropped_kernel();
  for (const auto& h : metrics.latency_snapshot()) {
    if (with_sampler && h.name == "tsdb.sample_us" && h.snap.count > 0) {
      run.sample_passes = h.snap.count;
      run.sample_mean_us = static_cast<double>(h.snap.sum) /
                           static_cast<double>(h.snap.count);
    }
    if (h.name == "live.detect_latency_us" && h.snap.count > 0) {
      run.detect_count = h.snap.count;
      run.detect_p50_us = static_cast<double>(h.snap.p50);
      run.detect_p99_us = static_cast<double>(h.snap.p99);
    }
  }
  return run;
}

}  // namespace
}  // namespace quicsand

int main(int argc, char** argv) {
  using namespace quicsand;
  bench::init(argc, argv);
  const auto shards = std::min<std::size_t>(bench::env_threads(), 8);

  // A one-day mixed scan+flood scenario provides realistic datagrams.
  auto scenario = bench::light_scenario({.days = 1, .telescope_bits = 14});
  telescope::TelescopeGenerator generator(scenario, bench::registry(),
                                          bench::deployment());
  // Cap the pre-materialized stream; drain batches until the cap.
  constexpr std::size_t kMaxPackets = 250000;
  std::vector<net::RawPacket> packets;
  net::RecordBatch batch;
  while (packets.size() < kMaxPackets && generator.next_batch(batch) > 0) {
    for (std::size_t i = 0;
         i < batch.size() && packets.size() < kMaxPackets; ++i) {
      const auto view = batch.view(i);
      packets.emplace_back(
          view.timestamp,
          std::vector<std::uint8_t>(view.data.begin(), view.data.end()));
    }
  }
  std::printf("live_ingest: %zu scenario datagrams, %zu shard(s)\n",
              packets.size(), shards);

  std::printf("%12s %12s %12s %10s %10s %8s\n", "offered_pps", "achieved",
              "sent", "delivered", "dropped", "secs");
  for (const double rate : {10.0, 1000.0, 100000.0}) {
    const auto run = run_rate(packets, rate, shards);
    if (!run) return 0;  // no sockets in this environment: skip cleanly
    std::printf("%12.0f %12.0f %12llu %10llu %10llu %8.2f\n",
                run->offered_pps, run->achieved_pps,
                static_cast<unsigned long long>(run->sent),
                static_cast<unsigned long long>(run->delivered),
                static_cast<unsigned long long>(run->dropped),
                run->elapsed_s);
    bench::BenchResult result;
    result.name =
        "live.ingest_pps.rate_" + std::to_string(static_cast<long>(rate));
    result.wall_ms = run->elapsed_s * 1000.0;
    result.records_per_s = run->delivered / std::max(run->elapsed_s, 1e-9);
    result.threads = shards;
    bench::append_bench_result(std::move(result));

    // End-to-end detection latency (first admitting packet's send stamp
    // -> alert callback) at the saturating rate, wall_ms carrying the
    // quantile. Only emitted when the pass actually fired alerts.
    if (rate >= 100000.0 && run->detect_count > 0) {
      std::printf(
          "detect latency: p50 %.0f us, p99 %.0f us over %llu alert(s)\n",
          run->detect_p50_us, run->detect_p99_us,
          static_cast<unsigned long long>(run->detect_count));
      for (const auto& [suffix, value] :
           {std::pair{"p50", run->detect_p50_us},
            std::pair{"p99", run->detect_p99_us}}) {
        bench::BenchResult latency;
        latency.name = std::string("live.detect_latency_") + suffix;
        latency.wall_ms = value / 1000.0;  // us -> ms
        latency.records_per_s =
            run->detect_count / std::max(run->elapsed_s, 1e-9);
        latency.threads = shards;
        bench::append_bench_result(std::move(latency));
      }
    }
  }

  // Same 100k pps pass with the 1 s history sampler attached: the
  // achieved rate must not move, and the sampler's own per-pass cost
  // (tsdb.sample_us, recorded off the hot path) must stay well under 1%
  // of the capture budget.
  const double sampled_rate = 100000.0;
  const auto sampled = run_rate(packets, sampled_rate, shards, true);
  if (sampled) {
    const double duty_pct =
        sampled->elapsed_s > 0
            ? 100.0 * (static_cast<double>(sampled->sample_passes) *
                       sampled->sample_mean_us / 1e6) /
                  sampled->elapsed_s
            : 0.0;
    std::printf(
        "with 1s sampler: achieved %.0f pps, %llu sampler passes, "
        "%.1f us/pass (%.4f%% of wall time)\n",
        sampled->achieved_pps,
        static_cast<unsigned long long>(sampled->sample_passes),
        sampled->sample_mean_us, duty_pct);
    bench::BenchResult with_sampler;
    with_sampler.name = "live.ingest_pps.rate_100000.sampled";
    with_sampler.wall_ms = sampled->elapsed_s * 1000.0;
    with_sampler.records_per_s =
        sampled->delivered / std::max(sampled->elapsed_s, 1e-9);
    with_sampler.threads = shards;
    bench::append_bench_result(std::move(with_sampler));

    bench::BenchResult cost;
    cost.name = "tsdb.sample_cost";
    cost.wall_ms = sampled->sample_mean_us / 1000.0;  // one pass, in ms
    cost.records_per_s =
        sampled->sample_passes / std::max(sampled->elapsed_s, 1e-9);
    cost.threads = 1;
    bench::append_bench_result(std::move(cost));
  }
  bench::write_obs_outputs();
  return 0;
}
