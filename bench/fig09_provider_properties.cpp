// Figure 9: attack properties per content provider. >83% of attacks
// target Google (58%) and Facebook (25%). Floods spoof a modest set of
// client addresses but randomize ports, which drives new SCIDs at the
// server. Despite fewer packets per attack, Google responds with more
// SCIDs (indicating higher state churn). Version mix: mvfst-draft-27
// (95%) in Facebook backscatter, draft-29 (78%) in Google backscatter.
#include <iostream>

#include "bench_common.hpp"
#include "core/victims.hpp"
#include "quic/version.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 9: per-provider attack properties");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto victim_report = core::analyze_victims(
      scenario.analysis.quic_attacks, registry(), deployment());
  const double total = std::max<double>(1, victim_report.total_attacks);
  auto share_of = [&](asdb::Asn asn) {
    const auto it = victim_report.attacks_by_asn.find(asn);
    return it == victim_report.attacks_by_asn.end()
               ? 0.0
               : static_cast<double>(it->second) / total;
  };
  compare("attacks on Google", "58%",
          util::pct(share_of(asdb::AsRegistry::kGoogle)));
  compare("attacks on Facebook", "25%",
          util::pct(share_of(asdb::AsRegistry::kFacebook)));

  const asdb::Asn providers[] = {asdb::AsRegistry::kGoogle,
                                 asdb::AsRegistry::kFacebook};
  const auto profiles = core::profile_providers(
      scenario.analysis.quic_attacks, scenario.analysis.response_sessions,
      registry(), providers);

  util::Table table({"metric", "Google", "Facebook"});
  auto row = [&](const char* name, auto getter) {
    table.add_row({name, util::fmt(getter(profiles[0]), 1),
                   util::fmt(getter(profiles[1]), 1)});
  };
  table.add_row({"attacks", std::to_string(profiles[0].attacks),
                 std::to_string(profiles[1].attacks)});
  row("median packets/attack", [](const core::ProviderProfile& p) {
    return p.packets_per_attack.median();
  });
  row("median client IPs/attack", [](const core::ProviderProfile& p) {
    return p.client_ips_per_attack.median();
  });
  row("median client ports/attack", [](const core::ProviderProfile& p) {
    return p.client_ports_per_attack.median();
  });
  row("median SCIDs/attack", [](const core::ProviderProfile& p) {
    return p.scids_per_attack.median();
  });
  table.print(std::cout);
  compare("Google: more SCIDs despite fewer packets",
          "yes",
          (profiles[0].scids_per_attack.median() >
                   profiles[1].scids_per_attack.median() &&
           profiles[0].packets_per_attack.median() <
                   profiles[1].packets_per_attack.median())
              ? "yes"
              : "no");

  compare("port randomization drives SCIDs",
          "SCIDs track ports, not IPs",
          "SCID/IP ratio Google=" +
              util::fmt(profiles[0].scids_per_attack.median() /
                            std::max(1.0, profiles[0]
                                              .client_ips_per_attack.median()),
                        1) +
              ", Facebook=" +
              util::fmt(profiles[1].scids_per_attack.median() /
                            std::max(1.0, profiles[1]
                                              .client_ips_per_attack.median()),
                        1));
  compare("Facebook backscatter on mvfst-draft-27", "95%",
          util::pct(profiles[1].version_share(0xfaceb002)));
  compare("Google backscatter on draft-29", "78%",
          util::pct(profiles[0].version_share(0xff00001d)));

  util::print_heading(std::cout, "Version mix detail");
  util::Table versions({"provider", "version", "packet share"});
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    std::uint64_t sum = 0;
    for (const auto& [v, c] : profiles[p].version_counts) sum += c;
    for (const auto& [v, c] : profiles[p].version_counts) {
      versions.add_row({profiles[p].name, quic::version_name(v),
                        util::pct(static_cast<double>(c) /
                                  std::max<double>(1, sum))});
    }
  }
  versions.print(std::cout);
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
