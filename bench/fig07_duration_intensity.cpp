// Figure 7: CDFs of flood durations and intensities, QUIC vs TCP/ICMP.
// The paper reports median durations of 255 s (QUIC) vs 1499 s
// (TCP/ICMP) and a median intensity close to 1 max-pps for both; the
// global rate estimate multiplies by 512 (telescope = 1/512 of IPv4).
#include <iostream>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(
      std::cout, "Figure 7: flood duration and intensity, QUIC vs TCP/ICMP");
  print_scale(config);
  const auto scenario = run_scenario(config);

  std::vector<double> quic_durations, quic_rates;
  for (const auto& attack : scenario.analysis.quic_attacks) {
    quic_durations.push_back(util::to_seconds(attack.duration()));
    quic_rates.push_back(attack.peak_pps.count());
  }
  std::vector<double> common_durations, common_rates;
  for (const auto& attack : scenario.analysis.common_attacks) {
    common_durations.push_back(util::to_seconds(attack.duration()));
    common_rates.push_back(attack.peak_pps.count());
  }
  std::cout << "QUIC attacks: " << quic_durations.size()
            << "  TCP/ICMP attacks: " << common_durations.size() << "\n";
  const double window_scale = 30.0 / config.days;
  compare("TCP/ICMP attacks (30d, paper-scale note)", "282k",
          util::with_commas(static_cast<std::uint64_t>(
              static_cast<double>(common_durations.size()) * window_scale)) +
              " at 1:" +
              util::fmt(9400.0 / scenario.config.attacks
                                     .common_attacks_per_day,
                        1) +
              " background-rate scale");

  if (quic_durations.empty() || common_durations.empty()) {
    std::cout << "not enough attacks at this scale; raise QUICSAND_DAYS\n";
    return 1;
  }
  compare("median QUIC flood duration", "255 s",
          util::fmt(util::median_of(quic_durations), 0) + " s");
  compare("median TCP/ICMP flood duration", "1499 s",
          util::fmt(util::median_of(common_durations), 0) + " s");
  compare("median QUIC intensity", "~1 max pps",
          util::fmt(util::median_of(quic_rates), 2) + " max pps");
  compare("median TCP/ICMP intensity", "~1 max pps",
          util::fmt(util::median_of(common_rates), 2) + " max pps");
  compare("global-rate estimate for the median QUIC flood", "512 x max pps",
          util::fmt(util::median_of(quic_rates) * 512, 0) + " pps");

  print_cdf("(a) duration CDF: QUIC", util::Cdf(quic_durations), "s");
  print_cdf("(a) duration CDF: TCP/ICMP", util::Cdf(common_durations), "s");
  print_cdf("(b) intensity CDF: QUIC", util::Cdf(quic_rates), "max pps");
  print_cdf("(b) intensity CDF: TCP/ICMP", util::Cdf(common_rates),
            "max pps");
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
