// Figure 12 (Appendix C.2): overlap of concurrent multi-vector attacks.
// Three quarters of concurrent QUIC attacks run completely in parallel
// with a TCP/ICMP attack (overlap share 100%); the mean share is 95%.
#include <iostream>

#include "bench_common.hpp"

namespace quicsand::bench {
namespace {

int run() {
  const auto config = light_scenario({});
  util::print_heading(std::cout,
                      "Figure 12: overlap share of concurrent attacks");
  print_scale(config);
  const auto scenario = run_scenario(config);

  const auto report = core::correlate_attacks(
      scenario.analysis.quic_attacks, scenario.analysis.common_attacks);
  const auto shares = report.overlap_shares();
  if (shares.empty()) {
    std::cout << "no concurrent attacks at this scale; raise "
                 "QUICSAND_DAYS\n";
    return 1;
  }
  const util::Cdf cdf(shares);
  std::cout << "concurrent QUIC attacks: " << shares.size() << "\n";
  compare("fully overlapping (share == 100%)", "75%",
          util::pct(1.0 - cdf.at(0.999)));
  compare("mean overlap share", "95%", util::pct(cdf.mean()));
  print_cdf("CDF: overlap share", cdf, "fraction of QUIC attack time");
  std::cout << "[generate " << util::fmt(scenario.generate_seconds, 1)
            << "s, analyze " << util::fmt(scenario.analyze_seconds, 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace quicsand::bench

int main(int argc, char** argv) {
  quicsand::bench::init(argc, argv);
  const int rc = quicsand::bench::run();
  quicsand::bench::write_obs_outputs();
  return rc;
}
