// Shared setup for the figure/table harnesses.
//
// Every bench binary regenerates one table or figure of the paper from a
// synthetic telescope scenario. Scale knobs (window length, telescope
// prefix, seed) come from environment variables so the same binaries can
// run a quick CI-sized reproduction or a full-scale one:
//
//   QUICSAND_DAYS  — window length in days (default: per-bench)
//   QUICSAND_SEED  — scenario seed (default 2021)
//   QUICSAND_TELESCOPE_BITS — telescope prefix length (default per-bench)
//   QUICSAND_THREADS — analysis shards/threads (default: hardware).
//     The parallel pipeline is bit-identical to the serial one for any
//     value, so this only affects wall-clock time.
//
// Every harness also takes observability flags (parsed by init()):
//
//   --metrics-out FILE — write a JSON metrics snapshot after the run
//   --trace-out FILE   — write a chrome://tracing / Perfetto trace
//   --bench-out FILE   — append machine-readable benchmark datapoints
//                        (also via env QUICSAND_BENCH_OUT); see
//                        append_bench_result()
//
// Each binary prints its effective scale and, where the paper reports a
// number, a "paper vs measured" line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asdb/registry.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "threat/intel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace quicsand::bench {

/// Parse the common observability flags (--metrics-out, --trace-out,
/// --bench-out). Prints usage and exits(2) on unknown flags or missing
/// values. Call first in every harness main().
void init(int argc, char** argv);

/// Process-wide sinks; run_scenario attaches them to the pipeline, and
/// harnesses can add their own metrics/spans.
obs::MetricsRegistry& metrics();
obs::Tracer& tracer();

/// One machine-readable benchmark datapoint (BENCH_pipeline.json schema).
struct BenchResult {
  std::string name;
  double wall_ms = 0;
  double records_per_s = 0;  ///< packets (records) per second of wall time
  std::size_t threads = 0;
};
void append_bench_result(BenchResult result);

/// Write whatever --metrics-out/--trace-out/--bench-out requested. Call
/// after run(); a no-op when no output was requested.
void write_obs_outputs();

/// Environment overrides with defaults.
int env_days(int default_days);
std::uint64_t env_seed();
int env_telescope_bits(int default_bits);
std::size_t env_threads();  ///< QUICSAND_THREADS, default hardware

const asdb::AsRegistry& registry();
const scanner::Deployment& deployment();

/// Scenario for the event-level figures (3-13): no research scanners
/// (the paper removes them first), a smaller telescope, and a background
/// TCP/ICMP attack rate reduced by the factor reported by the binary.
struct LightScenarioOptions {
  int days = 4;
  int telescope_bits = 16;
  double common_attacks_per_day = 600;  ///< paper-scale is 9400/day
};
telescope::ScenarioConfig light_scenario(const LightScenarioOptions& options);

/// One fully generated + analyzed scenario. All harnesses run the
/// sharded ParallelPipeline, whose products are bit-identical to the
/// serial Pipeline (the differential tests in
/// tests/core_parallel_pipeline_test.cpp enforce this).
struct AnalyzedScenario {
  telescope::ScenarioConfig config;
  telescope::GroundTruth truth;
  std::unique_ptr<core::ParallelPipeline> pipeline;
  core::Pipeline::AttackAnalysis analysis;
  threat::IntelDb intel;
  double generate_seconds = 0;
  double analyze_seconds = 0;
};

/// The pipeline options run_scenario uses for `config`.
core::PipelineOptions pipeline_options(
    const telescope::ScenarioConfig& config);

AnalyzedScenario run_scenario(const telescope::ScenarioConfig& config);

/// Print the standard scale banner.
void print_scale(const telescope::ScenarioConfig& config);

/// Print a "paper vs measured" comparison row.
void compare(const std::string& metric, const std::string& paper,
             const std::string& measured);

/// Render a CDF as quantile rows.
void print_cdf(const std::string& title, const util::Cdf& cdf,
               const std::string& unit);

}  // namespace quicsand::bench
