#!/bin/sh
# Thread-safety annotation gate (clang only):
#
#   1. positive: the whole library must compile warning-clean under
#      -Werror=thread-safety (the clang-tsa CMake preset)
#   2. negative: tests/tsa_negative.cpp holds one deliberately
#      unlocked access per annotation in obs/events.hpp and
#      core/parallel_pipeline.hpp, selected by -DTSA_PROBE=n. Probe 0
#      is the correctly-locked control and must build; every probe
#      1..N must be REJECTED. A probe that compiles means its
#      QS_GUARDED_BY/QS_REQUIRES was deleted or broken.
#
# Usage: scripts/check_tsa.sh [--no-build]
#   --no-build  skip the positive preset build (negative probes only)
set -eu

cd "$(dirname "$0")/.."

run_build=1
for arg in "$@"; do
  case "$arg" in
    --no-build) run_build=0 ;;
    *) echo "usage: scripts/check_tsa.sh [--no-build]" >&2; exit 2 ;;
  esac
done

clangxx="${CLANGXX:-clang++}"
if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "check_tsa: $clangxx not found — the thread-safety analysis is" \
       "clang-only; install clang or set CLANGXX" >&2
  exit 1
fi

jobs="$(nproc 2>/dev/null || echo 4)"

if [ "$run_build" = 1 ]; then
  echo "==> positive: clang-tsa preset (-Werror=thread-safety)"
  CXX="$clangxx" cmake --preset clang-tsa
  cmake --build --preset clang-tsa -j "$jobs"
fi

probes=10
flags="-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety"
src=tests/tsa_negative.cpp

echo "==> negative: control probe 0 must compile"
# shellcheck disable=SC2086
"$clangxx" $flags -DTSA_PROBE=0 "$src" || {
  echo "check_tsa: FAIL — the correctly-locked control does not" \
       "compile; the harness itself is broken" >&2
  exit 1
}

fail=0
n=1
while [ "$n" -le "$probes" ]; do
  # shellcheck disable=SC2086
  if "$clangxx" $flags -DTSA_PROBE="$n" "$src" 2>/dev/null; then
    echo "check_tsa: FAIL — probe $n compiled; the annotation it" \
         "trips was removed (see tests/tsa_negative.cpp)" >&2
    fail=1
  else
    echo "    probe $n rejected (good)"
  fi
  n=$((n + 1))
done

[ "$fail" = 0 ] || exit 1
echo "==> thread-safety gate passed ($probes probes rejected)"
