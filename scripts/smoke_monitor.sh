#!/bin/sh
# Live-endpoint smoke: launch `monitor --listen 127.0.0.1:0 --days 0`
# (serve-only mode), scrape /metrics, /healthz, the /tsdb history
# endpoints, /dash and /debug/flightrecorder with curl, assert a known
# counter is present and healthz reports every component live, then
# SIGTERM the process and require a clean exit.
#
# Usage: scripts/smoke_monitor.sh [path/to/monitor]
set -eu

cd "$(dirname "$0")/.."

monitor="${1:-build/examples/monitor}"
if [ ! -x "$monitor" ]; then
  echo "smoke_monitor: $monitor not built" >&2
  exit 2
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

"$monitor" --listen 127.0.0.1:0 --days 0 --serve-for 60 >"$log" 2>&1 &
pid=$!

# The bound port is printed (flushed) on the first line that mentions
# the admin endpoint; poll briefly for it.
port=""
for _ in $(seq 1 50); do
  port="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\)/.*#\1#p' "$log" | head -1)"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "smoke_monitor: monitor never printed its admin port" >&2
  cat "$log" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "monitor serving on port $port"

metrics="$(curl -sf "http://127.0.0.1:$port/metrics")"
echo "$metrics" | grep -q '^quicsand_monitor_packets_total ' || {
  echo "smoke_monitor: /metrics is missing quicsand_monitor_packets_total" >&2
  echo "$metrics" | head -20 >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}

healthz="$(curl -sf "http://127.0.0.1:$port/healthz")"
echo "$healthz" | grep -q '"status": "healthy"' || {
  echo "smoke_monitor: /healthz not healthy: $healthz" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}

curl -sf "http://127.0.0.1:$port/readyz" >/dev/null
curl -sf "http://127.0.0.1:$port/stats" | grep -q '"uptime_s"'

# Retained history: the 1 s sampler has had time to record at least one
# pass, so the catalog lists series and a query returns the pinned
# column set.
sleep 1.2
curl -sf "http://127.0.0.1:$port/tsdb/series" | grep -q '"tiers"' || {
  echo "smoke_monitor: /tsdb/series missing its tier table" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}
query="$(curl -sf "http://127.0.0.1:$port/tsdb/query?series=monitor.packets&step=0")"
echo "$query" | grep -q '"columns": \["t_us", "min", "max", "sum", "count", "last"\]' || {
  echo "smoke_monitor: /tsdb/query returned an unexpected shape: $query" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}
# Structured 400s: a malformed parameter answers the uniform error shape.
bad="$(curl -s "http://127.0.0.1:$port/tsdb/query?series=monitor.packets&from=oops")"
echo "$bad" | grep -q '"error": {"param": "from"' || {
  echo "smoke_monitor: malformed ?from= did not produce a structured 400: $bad" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}
curl -sf "http://127.0.0.1:$port/dash" | grep -q '<title>quicsand dash</title>' || {
  echo "smoke_monitor: /dash is not the embedded dashboard" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}
curl -sf "http://127.0.0.1:$port/debug/flightrecorder" | head -1 \
  | grep -q '"type": "meta"' || {
  echo "smoke_monitor: /debug/flightrecorder missing its meta line" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
}

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" != 0 ]; then
  echo "smoke_monitor: monitor exited $rc after SIGTERM" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke_monitor: OK (metrics + healthz served, clean exit)"
