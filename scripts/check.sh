#!/bin/sh
# Tier-1 gate, runnable locally and in CI:
#   1. configure + build the default preset
#   2. run the tier-1 ctest label (every registered gtest suite)
#   3. build the tsan preset and run the concurrency-sensitive suites
#      (thread pool, parallel pipeline, obs registry/tracer/event log)
#      under ThreadSanitizer
#   4. build the asan and ubsan presets' fuzz drivers and run a bounded
#      smoke (FUZZ_SMOKE_ITERATIONS per target, default 500) from the
#      committed corpus — replays every committed crasher, then fuzzes
#
# Usage: scripts/check.sh [--no-tsan] [--no-fuzz]
set -eu

cd "$(dirname "$0")/.."

run_tsan=1
run_fuzz=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-fuzz) run_fuzz=0 ;;
    *) echo "usage: scripts/check.sh [--no-tsan] [--no-fuzz]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

fuzz_targets="fuzz_net_headers fuzz_pcap fuzz_pcapng fuzz_quic_dissect \
fuzz_quic_header fuzz_quic_transport_params fuzz_quic_varint"
smoke_iters="${FUZZ_SMOKE_ITERATIONS:-500}"

echo "==> configure+build (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "==> ctest tier1"
ctest --preset tier1 -j "$jobs"

if [ "$run_tsan" = 1 ]; then
  echo "==> configure+build (tsan preset)"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target \
    core_parallel_pipeline_test obs_metrics_test obs_trace_test \
    obs_events_test
  echo "==> ctest tsan (parallel + obs suites)"
  ctest --preset tsan -j "$jobs"
fi

if [ "$run_fuzz" = 1 ]; then
  for preset in asan ubsan; do
    echo "==> configure+build fuzz drivers ($preset preset)"
    cmake --preset "$preset"
    # shellcheck disable=SC2086
    cmake --build --preset "$preset" -j "$jobs" --target $fuzz_targets
    echo "==> fuzz smoke ($preset, $smoke_iters iterations per target)"
    for target in $fuzz_targets; do
      name="${target#fuzz_}"
      "build-$preset/tests/fuzz/$target" \
        --iterations "$smoke_iters" --corpus "tests/corpus/$name"
    done
  done
fi

echo "==> all checks passed"
