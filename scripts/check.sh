#!/bin/sh
# Tier-1 gate, runnable locally and in CI:
#   1. configure + build the default preset
#   2. run the tier-1 ctest label (every registered gtest suite)
#   3. build the tsan preset and run the concurrency-sensitive suites
#      (thread pool, parallel pipeline, obs registry/tracer/event log,
#      health model, admin HTTP server) under ThreadSanitizer
#   4. build the asan and ubsan presets' fuzz drivers and run a bounded
#      smoke (FUZZ_SMOKE_ITERATIONS per target, default 500) from the
#      committed corpus — replays every committed crasher, then fuzzes
#   5. run quicsand_lint over every first-party tree (also the `lint`
#      ctest label), writing the JSON report CI uploads as an artifact;
#      when clang is installed, run the thread-safety gate
#      (scripts/check_tsa.sh: -Werror=thread-safety build + negative
#      probes); when clang-tidy is installed, tidy the files changed
#      relative to origin/main (or all of src/ on main itself)
#
# Usage: scripts/check.sh [--no-tsan] [--no-fuzz] [--no-tidy]
set -eu

cd "$(dirname "$0")/.."

run_tsan=1
run_fuzz=1
run_tidy=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-fuzz) run_fuzz=0 ;;
    --no-tidy) run_tidy=0 ;;
    *) echo "usage: scripts/check.sh [--no-tsan] [--no-fuzz] [--no-tidy]" >&2
       exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

fuzz_targets="fuzz_live_datagram fuzz_net_headers fuzz_pcap fuzz_pcapng \
fuzz_quic_dissect fuzz_quic_header fuzz_quic_transport_params \
fuzz_quic_varint"
smoke_iters="${FUZZ_SMOKE_ITERATIONS:-500}"

echo "==> configure+build (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "==> ctest tier1"
ctest --preset tier1 -j "$jobs"

echo "==> live-endpoint smoke (monitor --listen)"
scripts/smoke_monitor.sh

echo "==> live-capture smoke (monitor --live + flood_lab --send)"
scripts/smoke_live.sh

if [ "$run_tsan" = 1 ]; then
  echo "==> configure+build (tsan preset)"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target \
    core_parallel_pipeline_test obs_latency_test obs_metrics_test \
    obs_trace_test obs_events_test obs_health_test obs_http_test \
    obs_tsdb_test \
    net_live_ring_test net_live_error_test live_e2e_test \
    telescope_batch_diff_test net_record_batch_test util_sync_test
  echo "==> ctest tsan (parallel + obs + live + batch hand-off suites)"
  ctest --preset tsan -j "$jobs"
fi

if [ "$run_fuzz" = 1 ]; then
  for preset in asan ubsan; do
    echo "==> configure+build fuzz drivers ($preset preset)"
    cmake --preset "$preset"
    # shellcheck disable=SC2086
    cmake --build --preset "$preset" -j "$jobs" --target $fuzz_targets
    echo "==> fuzz smoke ($preset, $smoke_iters iterations per target)"
    for target in $fuzz_targets; do
      name="${target#fuzz_}"
      "build-$preset/tests/fuzz/$target" \
        --iterations "$smoke_iters" --corpus "tests/corpus/$name"
    done
  done
fi

echo "==> quicsand_lint"
build/tools/quicsand_lint --report build/lint_findings.json \
  src tests bench examples tools

if command -v clang++ >/dev/null 2>&1; then
  echo "==> thread-safety gate (clang-tsa preset + negative probes)"
  scripts/check_tsa.sh
else
  echo "==> thread-safety gate skipped (clang++ not installed)"
fi

if [ "$run_tidy" = 1 ] && command -v clang-tidy >/dev/null 2>&1; then
  # Tidy only the .cpp files changed against origin/main (keeps the
  # stage fast on feature branches); fall back to all of src/ when
  # there's no diff base.
  if git rev-parse --verify origin/main >/dev/null 2>&1; then
    changed="$(git diff --name-only origin/main -- '*.cpp' |
               while read -r f; do [ -f "$f" ] && echo "$f"; done)"
  else
    changed="$(find src -name '*.cpp')"
  fi
  if [ -n "$changed" ]; then
    echo "==> clang-tidy ($(echo "$changed" | wc -l) files)"
    # shellcheck disable=SC2086
    clang-tidy -p build --quiet $changed
  else
    echo "==> clang-tidy (no changed files)"
  fi
else
  echo "==> clang-tidy skipped (not installed or --no-tidy)"
fi

echo "==> all checks passed"
