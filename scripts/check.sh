#!/bin/sh
# Tier-1 gate, runnable locally and in CI:
#   1. configure + build the default preset
#   2. run the tier-1 ctest label (every registered gtest suite)
#   3. build the tsan preset and run the concurrency-sensitive suites
#      (thread pool, parallel pipeline, obs registry/tracer/event log)
#      under ThreadSanitizer
#
# Usage: scripts/check.sh [--no-tsan]
set -eu

cd "$(dirname "$0")/.."

run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    *) echo "usage: scripts/check.sh [--no-tsan]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> configure+build (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "==> ctest tier1"
ctest --preset tier1 -j "$jobs"

if [ "$run_tsan" = 1 ]; then
  echo "==> configure+build (tsan preset)"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target \
    core_parallel_pipeline_test obs_metrics_test obs_trace_test \
    obs_events_test
  echo "==> ctest tsan (parallel + obs suites)"
  ctest --preset tsan -j "$jobs"
fi

echo "==> all checks passed"
