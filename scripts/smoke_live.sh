#!/bin/sh
# Live-capture smoke: launch `monitor --live 127.0.0.1:0` (ephemeral
# port) with a live admin endpoint, replay a capped scenario at it with
# `flood_lab --send`, scrape the /tsdb history + /dash + flight
# recorder, then SIGTERM the monitor and require a clean exit whose
# summary accounts for every datagram the sender reported.
#
# On failure, the flight-recorder incident bundle (the last minutes of
# 1 s samples + detector events) is saved to $FLIGHT_ARTIFACT (default
# build/flight_live_failure.ndjson) so CI can upload it.
#
# Sandboxes that forbid loopback UDP sockets make the monitor exit
# before it prints its endpoint; that is reported as a skip (exit 0) so
# the rest of the gate still runs.
#
# Usage: scripts/smoke_live.sh [path/to/monitor] [path/to/flood_lab]
set -eu

cd "$(dirname "$0")/.."

monitor="${1:-build/examples/monitor}"
flood_lab="${2:-build/examples/flood_lab}"
for bin in "$monitor" "$flood_lab"; do
  if [ ! -x "$bin" ]; then
    echo "smoke_live: $bin not built" >&2
    exit 2
  fi
done

log="$(mktemp)"
send_log="$(mktemp)"
truth="$(mktemp)"
trap 'rm -f "$log" "$send_log" "$truth"' EXIT

flight_artifact="${FLIGHT_ARTIFACT:-build/flight_live_failure.ndjson}"
admin_port=""

# Preserve the incident bundle before giving up: curl the flight
# recorder from the still-running monitor into $flight_artifact.
save_flight() {
  if [ -n "$admin_port" ]; then
    curl -s "http://127.0.0.1:$admin_port/debug/flightrecorder" \
      >"$flight_artifact" 2>/dev/null || true
    echo "smoke_live: flight recorder bundle saved to $flight_artifact" >&2
  fi
}

# --flight-out doubles the artifact path: failures detected after the
# monitor already exited (bad exit code, datagram accounting) still
# leave the shutdown bundle on disk for CI to upload.
"$monitor" --live 127.0.0.1:0 --shards 2 --serve-for 60 \
  --listen 127.0.0.1:0 --flight-out "$flight_artifact" >"$log" 2>&1 &
pid=$!

# The bound port is printed (flushed) on the "live capture on udp://"
# line; poll briefly for it.
port=""
for _ in $(seq 1 50); do
  port="$(sed -n 's#.*udp://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$log" | head -1)"
  [ -n "$port" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "smoke_live: skipping (loopback UDP sockets unavailable)"
    cat "$log"
    exit 0
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "smoke_live: monitor never printed its capture endpoint" >&2
  cat "$log" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "monitor capturing on udp port $port"

admin_port="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\)/.*#\1#p' "$log" | head -1)"
[ -n "$admin_port" ] && echo "monitor admin endpoint on port $admin_port"

"$flood_lab" --send "127.0.0.1:$port" --send-pps 50000 --mode burst \
  --send-max-packets 50000 --truth-out "$truth" >"$send_log" 2>&1 || {
  echo "smoke_live: flood_lab --send failed" >&2
  cat "$send_log" >&2
  save_flight
  kill "$pid" 2>/dev/null || true
  exit 1
}
sent="$(sed -n 's/^sent \([0-9]*\) datagrams.*/\1/p' "$send_log" | head -1)"
if [ -z "$sent" ] || [ "$sent" = 0 ]; then
  echo "smoke_live: sender reported no datagrams" >&2
  cat "$send_log" >&2
  save_flight
  kill "$pid" 2>/dev/null || true
  exit 1
fi
grep -q '"type": "summary"' "$truth" || {
  echo "smoke_live: ground-truth NDJSON missing its summary line" >&2
  save_flight
  kill "$pid" 2>/dev/null || true
  exit 1
}

# The sampler has been retaining history the whole time: the live
# counters must be queryable with the pinned column shape, /dash must be
# the embedded dashboard, and the flight recorder must serve its bundle.
if [ -n "$admin_port" ]; then
  sleep 1.2
  curl -sf "http://127.0.0.1:$admin_port/tsdb/query?series=live.received_packets&step=0" \
    | grep -q '"columns": \["t_us", "min", "max", "sum", "count", "last"\]' || {
    echo "smoke_live: /tsdb/query?series=live.received_packets has no history" >&2
    save_flight
    kill "$pid" 2>/dev/null || true
    exit 1
  }
  curl -sf "http://127.0.0.1:$admin_port/dash" \
    | grep -q '<title>quicsand dash</title>' || {
    echo "smoke_live: /dash is not the embedded dashboard" >&2
    save_flight
    kill "$pid" 2>/dev/null || true
    exit 1
  }
  curl -sf "http://127.0.0.1:$admin_port/debug/flightrecorder" | head -1 \
    | grep -q '"type": "meta"' || {
    echo "smoke_live: /debug/flightrecorder missing its meta line" >&2
    save_flight
    kill "$pid" 2>/dev/null || true
    exit 1
  }
  # Latency observability: the stage histograms must be populated (the
  # burst far exceeds the 1-in-64 sample cadence) and bridged into the
  # retained history as .p50 quantile series.
  metrics="$(curl -sf "http://127.0.0.1:$admin_port/metrics")"
  e2e_count="$(printf '%s\n' "$metrics" \
    | sed -n 's/^quicsand_live_latency_e2e_us_count \([0-9]*\)$/\1/p')"
  if [ -z "$e2e_count" ] || [ "$e2e_count" = 0 ]; then
    echo "smoke_live: /metrics has no live.latency.e2e_us samples" >&2
    save_flight
    kill "$pid" 2>/dev/null || true
    exit 1
  fi
  # A loopback e2e p99 beyond 60 s would mean broken clock domains.
  e2e_p99="$(printf '%s\n' "$metrics" \
    | sed -n 's/^quicsand_live_latency_e2e_us{quantile="0.99"} \([0-9]*\)$/\1/p')"
  if [ -z "$e2e_p99" ] || [ "$e2e_p99" -gt 60000000 ]; then
    echo "smoke_live: live.latency.e2e_us p99 missing or insane: '$e2e_p99'" >&2
    save_flight
    kill "$pid" 2>/dev/null || true
    exit 1
  fi
  curl -sf "http://127.0.0.1:$admin_port/tsdb/series" \
    | grep -q '"name": "live.latency.e2e_us.p50"' || {
    echo "smoke_live: /tsdb/series lacks live.latency.e2e_us.p50" >&2
    save_flight
    kill "$pid" 2>/dev/null || true
    exit 1
  }
  echo "tsdb + dash + flight recorder + latency endpoints OK ($e2e_count e2e samples, p99 ${e2e_p99}us)"
fi

# Give the receiver a beat to drain, then ask for a clean shutdown.
sleep 1
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" != 0 ]; then
  echo "smoke_live: monitor exited $rc after SIGTERM" >&2
  cat "$log" >&2
  exit 1
fi

received="$(sed -n 's/^received \([0-9]*\) datagrams.*/\1/p' "$log" | head -1)"
if [ "$received" != "$sent" ]; then
  echo "smoke_live: sent $sent but monitor accounted for '$received'" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke_live: OK ($sent datagrams sent, all accounted for, clean exit)"
