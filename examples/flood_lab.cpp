// flood_lab — the paper's §6 server experiment as an interactive tool:
// replay a recorded client-Initial flood against a fresh worker-pool
// QUIC server and report availability (Table 1 methodology).
//
//   ./flood_lab [--pps N] [--packets N] [--workers N] [--retry]
//               [--hold SECONDS] [--dump-pcap FILE]
//               [--listen HOST:PORT]   live admin endpoint during the
//                                      replay; port 0 picks one
//               [--serve-for SECONDS]  keep serving after the replay,
//                                      0 = until SIGINT/SIGTERM
//
// Send mode turns the lab into a real traffic source: it streams a
// telescope scenario's datagrams over loopback UDP (QSL1-encapsulated,
// batched sendmmsg) at a shaped rate, for `monitor --live` or the live
// e2e test on the other side (DESIGN.md §10):
//
//   ./flood_lab --send PORT|HOST:PORT [--send-pps N]
//               [--mode constant|burst|ramp|chaos] [--truth-out FILE]
//               [--send-days N] [--send-seed S] [--send-max-packets N]
//
// --truth-out writes the scenario's planned-attack ledger as NDJSON so
// the receiving side can score its detections against ground truth.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "asdb/registry.hpp"
#include "net/live/sender.hpp"
#include "net/record_batch.hpp"
#include "obs/health.hpp"
#include "obs/http/admin.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tsdb.hpp"
#include "scanner/deployment.hpp"
#include "server/replay.hpp"
#include "telescope/generator.hpp"
#include "telescope/ground_truth_io.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace quicsand;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// --send mode: stream a telescope scenario over loopback UDP at a
/// shaped rate and (optionally) write the ground-truth ledger.
int run_send(const util::HostPort& target, double pps,
             net::live::RateMode mode, int days, std::uint64_t seed,
             std::uint64_t max_packets, const std::string& truth_out) {
  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, seed);
  // Mirror monitor's scenario shape so both ends of the loopback pair
  // agree on what "a day of telescope traffic" means.
  auto config = telescope::ScenarioConfig::april2021(days > 0 ? days : 1,
                                                     seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 18};
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.quic_attacks_per_day = 40;
  config.attacks.common_attacks_per_day = 0;
  telescope::TelescopeGenerator generator(config, registry, deployment);

  net::live::LiveSenderConfig sender_config;
  sender_config.host = target.host;
  sender_config.port = target.port;
  sender_config.pps = pps;
  sender_config.mode = mode;
  sender_config.seed = seed;
  net::live::LiveSender sender(sender_config);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::cout << "sending scenario to udp://" << target.host << ":"
            << target.port << " at " << pps << " pps ("
            << net::live::rate_mode_name(mode) << ")" << std::endl;

  // The generator refills the sender's RecordBatch in place: no
  // per-packet RawPacket copy between production and the socket.
  std::uint64_t produced = 0;
  const auto stats = sender.send_batches(
      [&](net::RecordBatch& batch) {
        if (max_packets > 0 && produced >= max_packets) return false;
        if (generator.next_batch(batch) == 0) return false;
        if (max_packets > 0 && produced + batch.size() > max_packets) {
          batch.truncate(static_cast<std::size_t>(max_packets - produced));
        }
        produced += batch.size();
        return true;
      },
      &g_stop);
  if (stats.sent == 0 && produced == 0 && !sender.last_error().empty()) {
    std::cerr << "cannot send to udp://" << target.host << ":" << target.port
              << ": " << sender.last_error() << "\n";
    return 2;
  }

  std::cout << "sent " << stats.sent << " datagrams in "
            << util::fmt(stats.elapsed_s, 2) << " s ("
            << util::fmt(stats.achieved_pps, 0) << " pps achieved";
  if (stats.send_failures > 0) {
    std::cout << ", " << stats.send_failures << " send failures";
  }
  std::cout << ")" << std::endl;

  if (!truth_out.empty()) {
    const auto& truth = generator.ground_truth();
    if (!telescope::write_ground_truth_ndjson_file(truth_out, truth)) {
      std::cerr << "cannot write " << truth_out << "\n";
      return 2;
    }
    std::cout << truth.attacks.size() << " planned attacks written to "
              << truth_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig server;
  server::ReplayConfig replay;
  replay.pps = 1000;
  replay.packets = 100000;
  std::string dump_path;
  std::optional<util::HostPort> listen;
  std::uint64_t serve_for_s = 0;  // 0 = until SIGINT/SIGTERM
  std::optional<util::HostPort> send;
  double send_pps = 50000;
  net::live::RateMode send_mode = net::live::RateMode::kConstant;
  int send_days = 1;
  std::uint64_t send_seed = 5;
  std::uint64_t send_max_packets = 0;  // 0 = the whole scenario
  std::string truth_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pps") {
      replay.pps = util::require_f64("--pps", value());
    } else if (arg == "--packets") {
      replay.packets = util::require_u64("--packets", value());
    } else if (arg == "--workers") {
      server.workers = util::require_int("--workers", value());
    } else if (arg == "--retry") {
      server.retry_enabled = true;
    } else if (arg == "--hold") {
      server.handshake_hold = util::require_i64("--hold", value()) * util::kSecond;
    } else if (arg == "--dump-pcap") {
      dump_path = value();
    } else if (arg == "--listen") {
      listen = util::require_host_port("--listen", value());
    } else if (arg == "--serve-for") {
      serve_for_s = util::require_u64("--serve-for", value());
    } else if (arg == "--send") {
      send = util::require_listen_address("--send", value());
    } else if (arg == "--send-pps") {
      send_pps = util::require_f64("--send-pps", value());
    } else if (arg == "--mode") {
      const std::string name = value();
      if (const auto mode = net::live::parse_rate_mode(name)) {
        send_mode = *mode;
      } else {
        std::cerr << "invalid value for --mode: '" << name
                  << "' (expected constant|burst|ramp|chaos)\n";
        return 2;
      }
    } else if (arg == "--send-days") {
      send_days = util::require_int("--send-days", value());
    } else if (arg == "--send-seed") {
      send_seed = util::require_u64("--send-seed", value());
    } else if (arg == "--send-max-packets") {
      send_max_packets = util::require_u64("--send-max-packets", value());
    } else if (arg == "--truth-out") {
      truth_out = value();
    } else {
      std::cerr << "usage: flood_lab [--pps N] [--packets N] [--workers N]"
                   " [--retry] [--hold SECONDS] [--dump-pcap FILE]"
                   " [--listen HOST:PORT] [--serve-for SECONDS]\n"
                   "       flood_lab --send PORT|HOST:PORT [--send-pps N]"
                   " [--mode constant|burst|ramp|chaos] [--truth-out FILE]"
                   " [--send-days N] [--send-seed S]"
                   " [--send-max-packets N]\n";
      return 2;
    }
  }

  if (send) {
    return run_send(*send, send_pps, send_mode, send_days, send_seed,
                    send_max_packets, truth_out);
  }

  obs::MetricsRegistry metrics;
  obs::Health health;
  obs::TimeSeriesStore tsdb;
  obs::Sampler sampler([&] {
    obs::SamplerConfig config;
    config.metrics = &metrics;
    config.store = &tsdb;
    return config;
  }());
  obs::http::AdminServer admin([&] {
    obs::http::AdminOptions options;
    options.http.host = listen ? listen->host : "127.0.0.1";
    options.http.port = listen ? listen->port : 0;
    options.metrics = &metrics;
    options.health = &health;
    options.tsdb = &tsdb;
    return options;
  }());
  if (listen) {
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    replay.obs.metrics = &metrics;
    replay.obs.health = &health;
    if (!admin.start()) {
      std::cerr << "cannot listen on " << listen->host << ":" << listen->port
                << ": " << admin.last_error() << "\n";
      return 2;
    }
    std::cout << "admin endpoint on http://" << listen->host << ":"
              << admin.port() << "/ (metrics, healthz, stats, tsdb, dash)"
              << std::endl;
    sampler.start();
  }

  std::cout << "replaying " << replay.packets << " client Initials at "
            << replay.pps << " pps against " << server.workers
            << " worker(s), " << server.connections_per_worker
            << " conns/worker, RETRY "
            << (server.retry_enabled ? "on" : "off") << "\n";

  if (!dump_path.empty()) {
    const auto written = server::dump_recording_pcap(replay, dump_path, 1000);
    std::cout << "dumped the first " << written
              << " recorded Initials to " << dump_path << "\n";
  }

  const auto result = server::run_replay(server, replay);
  const auto& stats = result.stats;
  util::Table table({"metric", "value"});
  table.add_row({"client requests", std::to_string(stats.client_requests)});
  table.add_row({"server responses", std::to_string(stats.server_responses)});
  table.add_row({"handshakes accepted", std::to_string(stats.accepted)});
  table.add_row({"retries sent", std::to_string(stats.retries_sent)});
  table.add_row({"dropped: no connection slot",
                 std::to_string(stats.dropped_no_slot)});
  table.add_row({"dropped: rx queue", std::to_string(stats.dropped_rx_queue)});
  table.add_row({"peak concurrent connections",
                 std::to_string(stats.peak_connections)});
  table.add_row({"service availability",
                 util::pct(stats.availability(), 1)});
  table.add_row({"extra round trip", result.extra_rtt ? "yes" : "no"});
  table.print(std::cout);

  if (!server.retry_enabled && stats.availability() < 0.5) {
    std::cout << "\nhint: rerun with --retry to see the stateless "
                 "mitigation hold 100% availability\n";
  }

  if (listen) {
    std::cout << "serving until "
              << (serve_for_s > 0 ? "--serve-for elapses" : "SIGINT/SIGTERM")
              << std::endl;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(serve_for_s);
    while (!g_stop.load() &&
           (serve_for_s == 0 ||
            std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    sampler.stop();
    admin.stop();
    std::cout << "admin endpoint stopped\n";
  }
  return 0;
}
