// flood_lab — the paper's §6 server experiment as an interactive tool:
// replay a recorded client-Initial flood against a fresh worker-pool
// QUIC server and report availability (Table 1 methodology).
//
//   ./flood_lab [--pps N] [--packets N] [--workers N] [--retry]
//               [--hold SECONDS] [--dump-pcap FILE]
//               [--listen HOST:PORT]   live admin endpoint during the
//                                      replay; port 0 picks one
//               [--serve-for SECONDS]  keep serving after the replay,
//                                      0 = until SIGINT/SIGTERM
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "obs/health.hpp"
#include "obs/http/admin.hpp"
#include "obs/metrics.hpp"
#include "server/replay.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace quicsand;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig server;
  server::ReplayConfig replay;
  replay.pps = 1000;
  replay.packets = 100000;
  std::string dump_path;
  std::optional<util::HostPort> listen;
  std::uint64_t serve_for_s = 0;  // 0 = until SIGINT/SIGTERM

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pps") {
      replay.pps = util::require_f64("--pps", value());
    } else if (arg == "--packets") {
      replay.packets = util::require_u64("--packets", value());
    } else if (arg == "--workers") {
      server.workers = util::require_int("--workers", value());
    } else if (arg == "--retry") {
      server.retry_enabled = true;
    } else if (arg == "--hold") {
      server.handshake_hold = util::require_i64("--hold", value()) * util::kSecond;
    } else if (arg == "--dump-pcap") {
      dump_path = value();
    } else if (arg == "--listen") {
      listen = util::require_host_port("--listen", value());
    } else if (arg == "--serve-for") {
      serve_for_s = util::require_u64("--serve-for", value());
    } else {
      std::cerr << "usage: flood_lab [--pps N] [--packets N] [--workers N]"
                   " [--retry] [--hold SECONDS] [--dump-pcap FILE]"
                   " [--listen HOST:PORT] [--serve-for SECONDS]\n";
      return 2;
    }
  }

  obs::MetricsRegistry metrics;
  obs::Health health;
  obs::http::AdminServer admin([&] {
    obs::http::AdminOptions options;
    options.http.host = listen ? listen->host : "127.0.0.1";
    options.http.port = listen ? listen->port : 0;
    options.metrics = &metrics;
    options.health = &health;
    return options;
  }());
  if (listen) {
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    replay.obs.metrics = &metrics;
    replay.obs.health = &health;
    if (!admin.start()) {
      std::cerr << "cannot listen on " << listen->host << ":" << listen->port
                << ": " << admin.last_error() << "\n";
      return 2;
    }
    std::cout << "admin endpoint on http://" << listen->host << ":"
              << admin.port() << "/ (metrics, healthz, stats)" << std::endl;
  }

  std::cout << "replaying " << replay.packets << " client Initials at "
            << replay.pps << " pps against " << server.workers
            << " worker(s), " << server.connections_per_worker
            << " conns/worker, RETRY "
            << (server.retry_enabled ? "on" : "off") << "\n";

  if (!dump_path.empty()) {
    const auto written = server::dump_recording_pcap(replay, dump_path, 1000);
    std::cout << "dumped the first " << written
              << " recorded Initials to " << dump_path << "\n";
  }

  const auto result = server::run_replay(server, replay);
  const auto& stats = result.stats;
  util::Table table({"metric", "value"});
  table.add_row({"client requests", std::to_string(stats.client_requests)});
  table.add_row({"server responses", std::to_string(stats.server_responses)});
  table.add_row({"handshakes accepted", std::to_string(stats.accepted)});
  table.add_row({"retries sent", std::to_string(stats.retries_sent)});
  table.add_row({"dropped: no connection slot",
                 std::to_string(stats.dropped_no_slot)});
  table.add_row({"dropped: rx queue", std::to_string(stats.dropped_rx_queue)});
  table.add_row({"peak concurrent connections",
                 std::to_string(stats.peak_connections)});
  table.add_row({"service availability",
                 util::pct(stats.availability(), 1)});
  table.add_row({"extra round trip", result.extra_rtt ? "yes" : "no"});
  table.print(std::cout);

  if (!server.retry_enabled && stats.availability() < 0.5) {
    std::cout << "\nhint: rerun with --retry to see the stateless "
                 "mitigation hold 100% availability\n";
  }

  if (listen) {
    std::cout << "serving until "
              << (serve_for_s > 0 ? "--serve-for elapses" : "SIGINT/SIGTERM")
              << std::endl;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(serve_for_s);
    while (!g_stop.load() &&
           (serve_for_s == 0 ||
            std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    admin.stop();
    std::cout << "admin endpoint stopped\n";
  }
  return 0;
}
