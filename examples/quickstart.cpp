// Quickstart: generate a small synthetic telescope scenario, run the
// QUICsand analysis pipeline on it, and print what the paper's §5 would
// report — all in a few seconds.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "asdb/registry.hpp"
#include "core/pipeline.hpp"
#include "core/victims.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace quicsand;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? util::require_u64("seed", argv[1]) : 1;

  // 1. A miniature Internet: AS registry (PeeringDB substitute) and a
  //    QUIC server deployment (active-scan hitlist substitute).
  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, seed);

  // 2. A one-day telescope scenario with the paper's traffic mixture,
  //    scaled down to run in seconds.
  auto config = telescope::ScenarioConfig::april2021(/*days=*/1, seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 18};
  config.tum.passes_per_day = 1.0;  // guarantee a research pass today
  config.rwth.passes_per_day = 0;
  config.attacks.common_attacks_per_day = 120;
  telescope::TelescopeGenerator generator(config, registry, deployment);

  // 3. The analysis pipeline: classify -> sessionize -> detect ->
  //    correlate.
  core::PipelineOptions options;
  options.window_start = config.start;
  options.days = config.days;
  options.research_prefixes.push_back(
      registry.prefixes_of(asdb::AsRegistry::kTumScanner).front());
  core::Pipeline pipeline(options);
  generator.generate(
      [&](const net::RawPacket& packet) { pipeline.consume(packet); });

  const auto& stats = pipeline.stats();
  std::cout << "telescope packets: " << stats.total << "\n";
  std::cout << "QUIC requests:  "
            << stats.of(core::TrafficClass::kQuicRequest) << "\n";
  std::cout << "QUIC responses: "
            << stats.of(core::TrafficClass::kQuicResponse) << "\n";
  std::cout << "research-scanner packets removed: " << stats.research
            << "\n\n";

  const auto analysis = pipeline.analyze_attacks();
  std::cout << "QUIC floods detected:     " << analysis.quic_attacks.size()
            << " (of " << analysis.response_sessions.size()
            << " response sessions)\n";
  std::cout << "TCP/ICMP floods detected: " << analysis.common_attacks.size()
            << "\n";

  const auto report = core::correlate_attacks(analysis.quic_attacks,
                                              analysis.common_attacks);
  std::cout << "multi-vector: "
            << util::pct(report.share(core::Relation::kConcurrent))
            << " concurrent, "
            << util::pct(report.share(core::Relation::kSequential))
            << " sequential, "
            << util::pct(report.share(core::Relation::kIsolated))
            << " isolated\n";

  const auto victims = core::analyze_victims(analysis.quic_attacks, registry,
                                             deployment);
  std::cout << "victims: " << victims.victims.size() << ", "
            << util::pct(victims.known_server_share())
            << " of attacks hit known QUIC servers\n";
  if (!victims.victims.empty()) {
    const auto& top = victims.victims.front();
    std::cout << "most attacked: " << top.address.to_string() << " ("
              << top.as_name << ", " << top.attack_count << " attacks)\n";
  }
  return 0;
}
