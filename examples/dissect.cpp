// dissect — the QUIC dissector as a command-line tool, like a miniature
// `tshark -d udp.port==443,quic`. Feed it a UDP payload as hex (argument
// or stdin) and it prints what the telescope classifier would see.
//
//   ./dissect c30000000108...            # hex payload as argument
//   echo c300... | ./dissect             # or on stdin
//   ./dissect --sample [client|server|retry|vn|gquic|reset]
//                                        # build + dissect a sample packet
#include <iostream>
#include <string>

#include "quic/dissector.hpp"
#include "quic/gquic.hpp"
#include "quic/packets.hpp"
#include "quic/retry.hpp"
#include "quic/version.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace quicsand;

namespace {

std::vector<std::uint8_t> sample_payload(const std::string& kind) {
  util::Rng rng(42);
  auto ctx = quic::HandshakeContext::random(1, rng);
  if (kind == "client") {
    return quic::build_client_initial(ctx, "www.example.org", rng,
                                      quic::CryptoFidelity::kFull);
  }
  if (kind == "server") {
    return quic::build_server_initial_handshake(ctx, rng,
                                                quic::CryptoFidelity::kFull);
  }
  if (kind == "retry") {
    quic::RetryTokenMinter minter(rng.bytes(32));
    const auto token =
        minter.mint(net::Ipv4Address(0x0a000001), 443, ctx.client_dcid,
                    util::kApril2021Start);
    return quic::build_retry_packet(1, ctx.client_scid,
                                    quic::ConnectionId(rng.bytes(8)), token,
                                    ctx.client_dcid);
  }
  if (kind == "vn") {
    const std::uint32_t versions[] = {1, 0xff00001d, 0xfaceb002};
    return quic::build_version_negotiation(ctx.client_scid, ctx.client_dcid,
                                           versions, rng);
  }
  if (kind == "gquic") {
    return quic::build_gquic_server_response(quic::ConnectionId(rng.bytes(8)),
                                             77, 200, rng);
  }
  if (kind == "reset") {
    return quic::build_stateless_reset(rng);
  }
  std::cerr << "unknown sample kind: " << kind << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string hex;
  if (argc >= 2 && std::string(argv[1]) == "--sample") {
    const auto payload = sample_payload(argc >= 3 ? argv[2] : "client");
    hex = util::to_hex(payload);
    std::cout << "sample payload (" << payload.size() << " bytes): " << hex
              << "\n\n";
  } else if (argc >= 2) {
    hex = argv[1];
  } else {
    std::getline(std::cin, hex);
  }
  // Strip whitespace and common separators.
  std::string cleaned;
  for (const char c : hex) {
    if (!isspace(static_cast<unsigned char>(c)) && c != ':') {
      cleaned.push_back(c);
    }
  }
  const auto bytes = util::from_hex(cleaned);
  if (!bytes) {
    std::cerr << "not a hex string\n";
    return 2;
  }

  quic::DissectOptions options;
  options.decrypt_initials = true;
  const auto result = quic::dissect_udp_payload(*bytes, options);
  if (!result.is_quic) {
    std::cout << "not QUIC (" << result.reject_reason << ")\n";
    return 1;
  }
  util::Table table(
      {"#", "kind", "version", "dcid", "scid", "token", "bytes", "deep"});
  std::size_t index = 0;
  for (const auto& pkt : result.packets) {
    const char* deep = "";
    switch (pkt.direction) {
      case quic::InitialDirection::kClientHello:
        deep = "client hello";
        break;
      case quic::InitialDirection::kServerResponse:
        deep = "server response";
        break;
      case quic::InitialDirection::kUndecryptable:
        deep = "undecryptable";
        break;
      case quic::InitialDirection::kNotAttempted:
        break;
    }
    table.add_row({std::to_string(index++),
                   quic::quic_packet_kind_name(pkt.kind),
                   pkt.version == 0 ? "-" : quic::version_name(pkt.version),
                   pkt.dcid.empty() ? "-" : pkt.dcid.to_hex(),
                   pkt.scid.empty() ? "-" : pkt.scid.to_hex(),
                   std::to_string(pkt.token_length),
                   std::to_string(pkt.size), deep});
  }
  table.print(std::cout);
  return 0;
}
