// analyze_pcap — run the QUICsand pipeline on a pcap file, or write a
// synthetic telescope capture to analyze later. This is the tool a
// telescope operator would point at their own capture.
//
//   ./analyze_pcap --emit capture.pcap [--days N] [--seed S]
//       generate a synthetic telescope capture (LINKTYPE_RAW)
//   ./analyze_pcap --in capture.pcap [--window-start EPOCH] [--days N]
//       classify, sessionize and report on an existing capture
//       (LINKTYPE_RAW or LINKTYPE_ETHERNET)
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "asdb/registry.hpp"
#include "asdb/serialize.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "net/pcap.hpp"
#include "net/pcapng.hpp"
#include "obs/metrics.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace quicsand;

namespace {

struct Args {
  std::string emit;
  std::string in;
  std::string registry_file;       ///< load AS data instead of synthetic
  std::string dump_registry_file;  ///< export the synthetic registry
  std::string metrics_out;         ///< JSON metrics snapshot (--in mode)
  int days = 1;
  std::uint64_t seed = 7;
  util::Timestamp window_start = util::kApril2021Start;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--emit") {
      const char* v = value();
      if (v == nullptr) return false;
      args.emit = v;
    } else if (arg == "--in") {
      const char* v = value();
      if (v == nullptr) return false;
      args.in = v;
    } else if (arg == "--days") {
      const char* v = value();
      if (v == nullptr) return false;
      args.days = util::require_int("--days", v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      args.seed = util::require_u64("--seed", v);
    } else if (arg == "--window-start") {
      const char* v = value();
      if (v == nullptr) return false;
      args.window_start =
          util::Timestamp{} +
          util::require_i64("--window-start", v) * util::kSecond;
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.metrics_out = v;
    } else if (arg == "--registry") {
      const char* v = value();
      if (v == nullptr) return false;
      args.registry_file = v;
    } else if (arg == "--dump-registry") {
      const char* v = value();
      if (v == nullptr) return false;
      args.dump_registry_file = v;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return !args.emit.empty() || !args.in.empty() ||
         !args.dump_registry_file.empty();
}

/// The AS registry used for mapping: an operator-provided file (see
/// asdb/serialize.hpp for the format) or the synthetic one.
asdb::AsRegistry make_registry(const Args& args) {
  if (!args.registry_file.empty()) {
    asdb::LoadError error;
    auto loaded = asdb::load_registry_file(args.registry_file, &error);
    if (!loaded) {
      std::cerr << "failed to load " << args.registry_file << " line "
                << error.line << ": " << error.message
                << "; falling back to the synthetic registry\n";
    } else {
      std::cout << "loaded " << loaded->as_count() << " ASes from "
                << args.registry_file << "\n";
      return *std::move(loaded);
    }
  }
  return asdb::AsRegistry::synthetic({}, args.seed);
}

int emit(const Args& args) {
  const auto registry = make_registry(args);
  const auto deployment =
      scanner::Deployment::synthetic(registry, {}, args.seed);
  auto config = telescope::ScenarioConfig::april2021(args.days, args.seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 18};
  config.tum.passes_per_day = 1.0;
  config.rwth.passes_per_day = 0;
  config.attacks.common_attacks_per_day = 120;
  telescope::TelescopeGenerator generator(config, registry, deployment);
  net::PcapWriter writer(args.emit);
  generator.generate(
      [&](const net::RawPacket& packet) { writer.write(packet); });
  std::cout << "wrote " << writer.packets_written() << " packets to "
            << args.emit << "\n";
  std::cout << "ground truth: " << generator.ground_truth().attacks.size()
            << " planned attacks ("
            << generator.ground_truth().quic_attacks().size() << " QUIC)\n";
  return 0;
}

int analyze(const Args& args) {
  obs::MetricsRegistry metrics;
  core::PipelineOptions options;
  options.window_start = args.window_start;
  options.days = args.days;
  options.obs.metrics = &metrics;
  // Flag the known research scanner prefixes (TUM / RWTH).
  options.research_prefixes.push_back(
      *net::Ipv4Prefix::parse("138.246.0.0/16"));
  options.research_prefixes.push_back(
      *net::Ipv4Prefix::parse("137.226.0.0/16"));
  core::Pipeline pipeline(options);

  // Auto-detect classic pcap vs pcapng by the first 4 bytes.
  std::uint64_t n = 0;
  {
    std::ifstream probe(args.in, std::ios::binary);
    std::uint8_t magic[4] = {0, 0, 0, 0};
    probe.read(reinterpret_cast<char*>(magic), 4);
    const bool pcapng = magic[0] == 0x0a && magic[1] == 0x0d &&
                        magic[2] == 0x0d && magic[3] == 0x0a;
    if (pcapng) {
      net::PcapngReader reader(args.in);
      reader.set_metrics(&metrics);
      n = reader.for_each(
          [&](const net::RawPacket& packet) { pipeline.consume(packet); });
    } else {
      net::PcapReader reader(args.in);
      reader.set_metrics(&metrics);
      n = reader.for_each(
          [&](const net::RawPacket& packet) { pipeline.consume(packet); });
    }
  }
  std::cout << "read " << n << " packets from " << args.in << "\n\n";

  const auto& stats = pipeline.stats();
  util::Table classes({"class", "packets"});
  for (std::size_t c = 0; c < core::kTrafficClassCount; ++c) {
    classes.add_row(
        {core::traffic_class_name(static_cast<core::TrafficClass>(c)),
         std::to_string(stats.by_class[c])});
  }
  classes.print(std::cout);
  std::cout << "undecodable: " << stats.undecodable
            << ", non-QUIC UDP/443: " << stats.quic_port_rejects
            << ", research-flagged: " << stats.research << "\n\n";

  const auto analysis = pipeline.analyze_attacks();
  // AS mapping: --registry for operator data, synthetic otherwise.
  const auto registry = make_registry(args);
  const auto deployment =
      scanner::Deployment::synthetic(registry, {}, args.seed);
  core::print_report(
      std::cout, core::build_report(pipeline, analysis, registry, deployment));
  std::cout << "\nQUIC response sessions: " << analysis.response_sessions.size()
            << ", detected QUIC floods: " << analysis.quic_attacks.size()
            << "\n";
  std::cout << "TCP/ICMP backscatter sessions: "
            << analysis.common_sessions.size()
            << ", detected common floods: " << analysis.common_attacks.size()
            << "\n";
  if (!analysis.quic_attacks.empty()) {
    util::Table attacks(
        {"victim", "start (UTC)", "duration", "packets", "max pps"});
    std::size_t shown = 0;
    for (const auto& attack : analysis.quic_attacks) {
      attacks.add_row({attack.victim.to_string(),
                       util::format_utc(attack.start),
                       util::format_duration(attack.duration()),
                       std::to_string(attack.packets.count()),
                       util::fmt(attack.peak_pps.count(), 2)});
      if (++shown == 10) break;
    }
    std::cout << "\nfirst QUIC floods:\n";
    attacks.print(std::cout);
  }
  if (!args.metrics_out.empty()) {
    if (!metrics.write_json_file(args.metrics_out)) {
      std::cerr << "cannot write " << args.metrics_out << "\n";
      return 1;
    }
    std::cout << "\nmetrics snapshot written to " << args.metrics_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr << "usage: analyze_pcap --emit FILE | --in FILE "
                 "[--days N] [--seed S] [--window-start EPOCH] "
                 "[--registry FILE] [--dump-registry FILE] "
                 "[--metrics-out FILE]\n";
    return 2;
  }
  if (!args.dump_registry_file.empty()) {
    const auto registry = make_registry(args);
    if (!asdb::save_registry_file(args.dump_registry_file, registry)) {
      std::cerr << "cannot write " << args.dump_registry_file << "\n";
      return 1;
    }
    std::cout << "wrote " << registry.as_count() << " ASes to "
              << args.dump_registry_file << "\n";
    if (args.emit.empty() && args.in.empty()) return 0;
  }
  if (!args.emit.empty()) return emit(args);
  return analyze(args);
}
