// monitor — the paper's motivation made operational (§1: "it will be
// crucial to monitor such attack attempts early"). Streams a telescope
// scenario through the ONLINE detector and prints alerts the moment a
// backscatter session crosses the DoS thresholds, long before the
// session ends — the early-warning view an operator would watch.
//
//   ./monitor [--days N] [--seed S]
#include <iostream>
#include <string>

#include "asdb/registry.hpp"
#include "core/classifier.hpp"
#include "core/online.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "util/table.hpp"

using namespace quicsand;

int main(int argc, char** argv) {
  int days = 1;
  std::uint64_t seed = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      days = std::atoi(value());
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else {
      std::cerr << "usage: monitor [--days N] [--seed S]\n";
      return 2;
    }
  }

  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  const auto deployment = scanner::Deployment::synthetic(registry, {}, seed);
  auto config = telescope::ScenarioConfig::april2021(days, seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 18};
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.quic_attacks_per_day = 40;
  config.attacks.common_attacks_per_day = 0;
  telescope::TelescopeGenerator generator(config, registry, deployment);

  core::Classifier classifier({});
  core::OnlineDetector detector({});
  std::uint64_t alerts = 0;
  detector.set_on_alert([&](const core::DetectedAttack& attack) {
    ++alerts;
    const auto* info = registry.lookup(attack.victim);
    std::cout << util::format_utc(attack.end) << "  ALERT  victim "
              << attack.victim.to_string() << " ("
              << (info != nullptr ? info->name : "?") << ")  "
              << attack.packets << " pkts in "
              << util::format_duration(attack.end - attack.start)
              << ", running at " << util::fmt(attack.peak_pps, 2)
              << " max pps\n";
  });
  detector.set_on_attack([&](const core::DetectedAttack& attack) {
    std::cout << util::format_utc(attack.end) << "  ended  victim "
              << attack.victim.to_string() << "  total "
              << attack.packets << " pkts over "
              << util::format_duration(attack.end - attack.start) << "\n";
  });

  std::uint64_t packets = 0;
  while (auto packet = generator.next()) {
    ++packets;
    if (const auto record = classifier.classify(*packet)) {
      detector.consume(*record);
    }
  }
  detector.finish();

  std::cout << "\nprocessed " << packets << " packets over " << days
            << " day(s)\n";
  std::cout << "alerts: " << detector.alerts_fired() << ", attacks closed: "
            << detector.attacks_closed() << "\n";
  std::cout << "mean time from attack start to alert: "
            << util::fmt(detector.mean_alert_latency_s(), 0)
            << " s (vs waiting for session end + batch analysis)\n";
  return alerts > 0 ? 0 : 1;
}
