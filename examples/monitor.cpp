// monitor — the paper's motivation made operational (§1: "it will be
// crucial to monitor such attack attempts early"). Streams a telescope
// scenario through the ONLINE detector and prints alerts the moment a
// backscatter session crosses the DoS thresholds, long before the
// session ends — the early-warning view an operator would watch.
//
// Alongside the alert stream it prints a periodic metrics snapshot (one
// line per simulated interval) drawn from the obs registry, and can
// export the full state for dashboards:
//
//   ./monitor [--days N] [--seed S] [--snapshot-every SECONDS]
//             [--metrics-out FILE]   JSON metrics snapshot on exit
//             [--prom-out FILE]      Prometheus text exposition on exit
//             [--events-out FILE]    NDJSON detector event log
//             [--listen HOST:PORT]   live admin endpoint (/metrics,
//                                    /healthz, /events, /tsdb/query,
//                                    /dash, ...); port 0 picks one and
//                                    prints it
//             [--serve-for SECONDS]  in listen mode, exit after this
//                                    long instead of waiting for ^C
//             [--flight-out FILE]    write the flight-recorder NDJSON
//                                    bundle (last ~2 min of 1 s samples
//                                    + events) on exit — including
//                                    SIGINT/SIGTERM shutdown
//
// Whenever an admin endpoint or live capture is active, a 1 s obs
// sampler retains every registry metric in an in-process TSDB
// (multi-resolution ring buffers, see DESIGN.md §11) served at
// /tsdb/series, /tsdb/query and the /dash sparkline dashboard;
// tools/quicsand_top is the terminal client for the same endpoints.
//
// Live capture mode replaces the built-in scenario with real datagrams
// from a UDP socket (see DESIGN.md §10; flood_lab --send is the matching
// traffic source):
//
//   ./monitor --live PORT|HOST:PORT [--shards N] [--serve-for SECONDS]
//             [--listen ...] [--metrics-out ...] [--events-out ...]
//
// Prints "live capture on udp://HOST:PORT" (flushed) once the socket is
// bound — with port 0 that line is how scripts learn the real port —
// then alerts as they fire, until SIGINT/SIGTERM (or --serve-for).
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "asdb/registry.hpp"
#include "core/classifier.hpp"
#include "core/online.hpp"
#include "core/online_shards.hpp"
#include "net/live/frame.hpp"
#include "net/live/receiver.hpp"
#include "net/record_batch.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/http/admin.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tsdb.hpp"
#include "scanner/deployment.hpp"
#include "telescope/generator.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace quicsand;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// Live capture mode: socket -> per-shard classifier -> sharded online
/// detector, until a signal or --serve-for. Owns its own obs stack so
/// the scenario path below stays untouched.
int run_live(const util::HostPort& endpoint, std::size_t shards,
             std::uint64_t serve_for_s, const std::string& metrics_out,
             const std::string& prom_out, const std::string& events_out,
             const std::string& flight_out,
             const std::optional<util::HostPort>& listen,
             const asdb::AsRegistry& registry) {
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  obs::Health health;
  obs::TimeSeriesStore tsdb;
  obs::Sampler sampler([&] {
    obs::SamplerConfig config;
    config.metrics = &metrics;
    config.store = &tsdb;
    config.events = &events;
    return config;
  }());
  obs::FlightRecorder flight([&] {
    obs::FlightRecorderConfig config;
    config.store = &tsdb;
    return config;
  }());

  core::ShardedOnlineDetectorConfig detector_config;
  detector_config.shards = shards;
  detector_config.detector.obs.metrics = &metrics;
  detector_config.detector.obs.events = &events;
  detector_config.detector.obs.health = &health;
  // Wall-clock hook: alerts measure wire -> callback detection latency
  // against the QSL2 stamps the receiver threads through.
  detector_config.detector.wall_clock = net::live::wall_clock_us;
  core::ShardedOnlineDetector detector(detector_config);
  detector.set_on_alert([&](const core::DetectedAttack& attack) {
    const auto* info = registry.lookup(attack.victim);
    // Alerts are the point of live mode: flush each one immediately.
    std::cout << util::format_utc(attack.end) << "  ALERT  victim "
              << attack.victim.to_string() << " ("
              << (info != nullptr ? info->name : "?") << ")  "
              << attack.packets.count() << " pkts in "
              << util::format_duration(attack.end - attack.start)
              << ", running at " << util::fmt(attack.peak_pps.count(), 2)
              << " max pps" << std::endl;
  });

  std::vector<std::unique_ptr<core::Classifier>> classifiers;
  classifiers.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    classifiers.push_back(std::make_unique<core::Classifier>(
        core::ClassifierConfig{}));
  }

  net::live::LiveReceiverConfig receiver_config;
  receiver_config.host = endpoint.host;
  receiver_config.port = endpoint.port;
  receiver_config.shards = shards;
  receiver_config.obs.metrics = &metrics;
  receiver_config.obs.health = &health;
  net::live::LiveReceiver receiver(receiver_config);

  obs::http::AdminServer admin([&] {
    obs::http::AdminOptions options;
    options.http.host = listen ? listen->host : "127.0.0.1";
    options.http.port = listen ? listen->port : 0;
    options.metrics = &metrics;
    options.health = &health;
    options.events = &events;
    options.tsdb = &tsdb;
    options.flight = &flight;
    return options;
  }());
  if (listen) {
    if (!admin.start()) {
      std::cerr << "cannot listen on " << listen->host << ":" << listen->port
                << ": " << admin.last_error() << "\n";
      return 2;
    }
    std::cout << "admin endpoint on http://" << listen->host << ":"
              << admin.port() << "/ (metrics, healthz, events, tsdb, dash)"
              << std::endl;
  }
  // Live capture always retains history: /dash and the flight recorder
  // must have data even when no admin endpoint was requested, so that a
  // post-incident --flight-out dump is never empty.
  sampler.start();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  if (!receiver.start([&](std::size_t shard, const net::RawPacket& packet,
                          const net::live::DatagramTiming& timing) {
        if (const auto record = classifiers[shard]->classify(packet)) {
          // net cannot depend on core, so the live DatagramTiming is
          // converted to the detector's IngestTiming at this boundary.
          const core::IngestTiming ingest{timing.send_wall_us,
                                          timing.recv_wall_us};
          detector.consume(shard, *record, &ingest);
        }
      })) {
    std::cerr << "cannot capture on udp://" << endpoint.host << ":"
              << endpoint.port << ": " << receiver.last_error() << "\n";
    return 2;
  }
  std::cout << "live capture on udp://" << endpoint.host << ":"
            << receiver.port() << " (" << shards << " shard(s))"
            << std::endl;
  std::cout << "stopping on "
            << (serve_for_s > 0 ? "--serve-for elapse or SIGINT/SIGTERM"
                                : "SIGINT/SIGTERM")
            << std::endl;

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(serve_for_s);
  while (!g_stop.load() &&
         (serve_for_s == 0 ||
          std::chrono::steady_clock::now() < deadline)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  receiver.stop();
  detector.finish();
  sampler.stop();  // takes one final sample so the dump includes the tail

  std::cout << "\nreceived " << receiver.received() << " datagrams, "
            << receiver.delivered() << " analyzed, " << receiver.dropped_ring()
            << " dropped in rings, " << receiver.dropped_kernel()
            << " dropped by the kernel, " << receiver.undecodable()
            << " undecodable\n";
  std::cout << "alerts: " << detector.alerts_fired()
            << ", attacks closed: " << detector.attacks_closed() << "\n";

  if (!metrics_out.empty() && !metrics.write_json_file(metrics_out)) {
    std::cerr << "cannot write " << metrics_out << "\n";
    return 2;
  }
  if (!prom_out.empty()) {
    std::ofstream out(prom_out, std::ios::trunc);
    if (out) out << metrics.to_prometheus();
    if (!out) {
      std::cerr << "cannot write " << prom_out << "\n";
      return 2;
    }
  }
  if (!events_out.empty() && !events.write_ndjson_file(events_out)) {
    std::cerr << "cannot write " << events_out << "\n";
    return 2;
  }
  if (!flight_out.empty()) {
    if (flight.dump_file(flight_out)) {
      std::cout << "flight recorder bundle written to " << flight_out << "\n";
    } else {
      std::cerr << "cannot write " << flight_out << "\n";
      return 2;
    }
  }
  if (listen) admin.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int days = 1;
  std::uint64_t seed = 5;
  std::uint64_t snapshot_every_s = 6 * 60 * 60;  // simulated time
  std::string metrics_out;
  std::string prom_out;
  std::string events_out;
  std::string flight_out;
  std::optional<util::HostPort> listen;
  std::uint64_t serve_for_s = 0;  // 0 = until SIGINT/SIGTERM
  std::optional<util::HostPort> live;
  int shards = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      days = util::require_int("--days", value());
    } else if (arg == "--seed") {
      seed = util::require_u64("--seed", value());
    } else if (arg == "--snapshot-every") {
      snapshot_every_s = util::require_u64("--snapshot-every", value());
    } else if (arg == "--metrics-out") {
      metrics_out = value();
    } else if (arg == "--prom-out") {
      prom_out = value();
    } else if (arg == "--events-out") {
      events_out = value();
    } else if (arg == "--flight-out") {
      flight_out = value();
    } else if (arg == "--listen") {
      listen = util::require_host_port("--listen", value());
    } else if (arg == "--serve-for") {
      serve_for_s = util::require_u64("--serve-for", value());
    } else if (arg == "--live") {
      live = util::require_listen_address("--live", value());
    } else if (arg == "--shards") {
      shards = util::require_int("--shards", value());
      if (shards <= 0) {
        std::cerr << "invalid value for --shards: must be positive\n";
        return 2;
      }
    } else {
      std::cerr << "usage: monitor [--days N] [--seed S]"
                   " [--snapshot-every SECONDS] [--metrics-out FILE]"
                   " [--prom-out FILE] [--events-out FILE]"
                   " [--flight-out FILE] [--listen HOST:PORT]"
                   " [--serve-for SECONDS] [--live PORT|HOST:PORT]"
                   " [--shards N]\n";
      return 2;
    }
  }

  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  if (live) {
    return run_live(*live, static_cast<std::size_t>(shards), serve_for_s,
                    metrics_out, prom_out, events_out, flight_out, listen,
                    registry);
  }
  const auto deployment = scanner::Deployment::synthetic(registry, {}, seed);
  // --days 0 skips ingest entirely (serve-only mode for smoke tests);
  // the scenario builder itself requires at least one day.
  auto config = telescope::ScenarioConfig::april2021(days > 0 ? days : 1, seed);
  config.telescope = {net::Ipv4Address::from_octets(44, 0, 0, 0), 18};
  config.tum.passes_per_day = 0;
  config.rwth.passes_per_day = 0;
  config.attacks.quic_attacks_per_day = 40;
  config.attacks.common_attacks_per_day = 0;
  telescope::TelescopeGenerator generator(config, registry, deployment);

  obs::MetricsRegistry metrics;
  obs::EventLog events;
  obs::Health health;
  obs::TimeSeriesStore tsdb;
  obs::Sampler sampler([&] {
    obs::SamplerConfig config;
    config.metrics = &metrics;
    config.store = &tsdb;
    config.events = &events;
    return config;
  }());
  obs::FlightRecorder flight([&] {
    obs::FlightRecorderConfig config;
    config.store = &tsdb;
    return config;
  }());

  core::Classifier classifier({});
  core::OnlineDetectorConfig detector_config;
  detector_config.obs.metrics = &metrics;
  detector_config.obs.events = &events;
  detector_config.obs.health = &health;
  core::OnlineDetector detector(detector_config);
  std::uint64_t alerts = 0;
  detector.set_on_alert([&](const core::DetectedAttack& attack) {
    ++alerts;
    const auto* info = registry.lookup(attack.victim);
    std::cout << util::format_utc(attack.end) << "  ALERT  victim "
              << attack.victim.to_string() << " ("
              << (info != nullptr ? info->name : "?") << ")  "
              << attack.packets.count() << " pkts in "
              << util::format_duration(attack.end - attack.start)
              << ", running at " << util::fmt(attack.peak_pps.count(), 2)
              << " max pps\n";
  });
  detector.set_on_attack([&](const core::DetectedAttack& attack) {
    std::cout << util::format_utc(attack.end) << "  ended  victim "
              << attack.victim.to_string() << "  total "
              << attack.packets.count() << " pkts over "
              << util::format_duration(attack.end - attack.start) << "\n";
  });

  auto& packets_counter =
      metrics.counter("monitor.packets", "telescope packets streamed");

  // The admin server (when requested) serves live state for the whole
  // run, including the post-ingest serve window.
  obs::http::AdminServer admin([&] {
    obs::http::AdminOptions options;
    options.http.host = listen ? listen->host : "127.0.0.1";
    options.http.port = listen ? listen->port : 0;
    options.metrics = &metrics;
    options.health = &health;
    options.events = &events;
    options.tsdb = &tsdb;
    options.flight = &flight;
    return options;
  }());
  if (listen) {
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (!admin.start()) {
      std::cerr << "cannot listen on " << listen->host << ":" << listen->port
                << ": " << admin.last_error() << "\n";
      return 2;
    }
    // Port 0 binds an ephemeral port; print the real one (flushed, so
    // scripts that parse it see the line before any curl).
    std::cout << "admin endpoint on http://" << listen->host << ":"
              << admin.port() << "/ (metrics, healthz, events, tsdb, dash)"
              << std::endl;
  }
  // History only matters when somebody can read it: an admin endpoint
  // (/dash, /tsdb/*) or a --flight-out dump on exit. Batch-only runs
  // skip the sampler thread entirely.
  if (listen || !flight_out.empty()) sampler.start();
  auto& ingest_health = health.component("telescope_generator");
  ingest_health.set_ready(true);
  const util::Duration snapshot_every = snapshot_every_s * util::kSecond;
  util::Timestamp next_snapshot{};
  auto print_snapshot = [&](util::Timestamp now) {
    std::cout << util::format_utc(now) << "  [metrics] packets="
              << packets_counter.value()
              << " records=" << metrics.counter("online.records").value()
              << " open_sessions=" << detector.open_sessions()
              << " alerts=" << detector.alerts_fired()
              << " attacks_closed=" << detector.attacks_closed()
              << " evicted=" << detector.sessions_evicted() << "\n";
  };

  std::uint64_t streamed = 0;
  net::RecordBatch batch;
  net::RawPacket packet;
  bool stopped = false;
  while (!stopped && days > 0 && generator.next_batch(batch) > 0) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (g_stop.load()) {
        stopped = true;
        break;
      }
      const auto view = batch.view(i);
      packet.timestamp = view.timestamp;
      packet.data.assign(view.data.begin(), view.data.end());
      packets_counter.add();
      if ((++streamed & 0x3FF) == 0) ingest_health.heartbeat();
      if (snapshot_every_s > 0) {
        if (next_snapshot == util::Timestamp{}) {
          next_snapshot = packet.timestamp + snapshot_every;
        } else if (packet.timestamp >= next_snapshot) {
          print_snapshot(packet.timestamp);
          while (next_snapshot <= packet.timestamp) {
            next_snapshot += snapshot_every;
          }
        }
      }
      if (const auto record = classifier.classify(packet)) {
        detector.consume(*record);
      }
    }
  }
  detector.finish();
  ingest_health.heartbeat();
  ingest_health.set_idle(true);  // scenario drained: quiet, not stale

  std::cout << "\nprocessed " << packets_counter.value() << " packets over "
            << days << " day(s)\n";
  std::cout << "alerts: " << detector.alerts_fired() << ", attacks closed: "
            << detector.attacks_closed() << "\n";
  std::cout << "mean time from attack start to alert: "
            << util::fmt(detector.mean_alert_latency_s(), 0)
            << " s (vs waiting for session end + batch analysis)\n";

  if (!metrics_out.empty()) {
    if (metrics.write_json_file(metrics_out)) {
      std::cout << "metrics snapshot written to " << metrics_out << "\n";
    } else {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 2;
    }
  }
  if (!prom_out.empty()) {
    std::ofstream out(prom_out, std::ios::trunc);
    if (out) out << metrics.to_prometheus();
    if (out) {
      std::cout << "prometheus exposition written to " << prom_out << "\n";
    } else {
      std::cerr << "cannot write " << prom_out << "\n";
      return 2;
    }
  }
  if (!events_out.empty()) {
    if (events.write_ndjson_file(events_out)) {
      std::cout << events.events().size() << " detector events written to "
                << events_out << "\n";
    } else {
      std::cerr << "cannot write " << events_out << "\n";
      return 2;
    }
  }

  // Written on every exit path below — including SIGINT/SIGTERM ending
  // the serve window — so an operator killing a wedged monitor still
  // gets the incident bundle.
  auto dump_flight = [&]() -> bool {
    sampler.stop();  // final sample: the dump includes the last tail
    if (flight_out.empty()) return true;
    if (flight.dump_file(flight_out)) {
      std::cout << "flight recorder bundle written to " << flight_out
                << "\n";
      return true;
    }
    std::cerr << "cannot write " << flight_out << "\n";
    return false;
  };

  if (listen) {
    // Keep serving live state until a signal (or --serve-for elapses);
    // operators curl /metrics and /events against the finished run.
    std::cout << "serving until "
              << (serve_for_s > 0 ? "--serve-for elapses" : "SIGINT/SIGTERM")
              << std::endl;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(serve_for_s);
    while (!g_stop.load() &&
           (serve_for_s == 0 ||
            std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const bool flight_ok = dump_flight();
    admin.stop();
    std::cout << "admin endpoint stopped\n";
    return flight_ok ? 0 : 2;  // zero-alert serve windows still exit clean
  }
  if (!dump_flight()) return 2;
  return alerts > 0 ? 0 : 1;
}
