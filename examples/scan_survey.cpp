// scan_survey — the paper's §6 active validation: probe the most
// interesting QUIC servers for RETRY deployment, report the version mix
// of the deployment (active-scan substitute), and show the what-if of an
// operator enabling RETRY.
//
//   ./scan_survey [--seed S] [--probes N]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>

#include "asdb/registry.hpp"
#include "quic/version.hpp"
#include "scanner/deployment.hpp"
#include "scanner/retry_prober.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace quicsand;

int main(int argc, char** argv) {
  std::uint64_t seed = 11;
  std::size_t probes = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = util::require_u64("--seed", value());
    } else if (arg == "--probes") {
      probes = util::require_u64("--probes", value());
    } else {
      std::cerr << "usage: scan_survey [--seed S] [--probes N]\n";
      return 2;
    }
  }

  const auto registry = asdb::AsRegistry::synthetic({}, seed);
  auto deployment = scanner::Deployment::synthetic(registry, {}, seed);
  std::cout << "deployment (active-scan substitute): " << deployment.size()
            << " QUIC servers\n";

  // Version census, like Rüth et al.'s scans.
  std::map<std::string, std::size_t> by_version;
  std::size_t support_retry = 0;
  for (const auto& server : deployment.servers()) {
    ++by_version[quic::version_name(server.version)];
    if (server.supports_retry) ++support_retry;
  }
  util::Table census({"version", "servers"});
  for (const auto& [name, count] : by_version) {
    census.add_row({name, std::to_string(count)});
  }
  census.print(std::cout);
  std::cout << "implementations supporting RETRY: "
            << util::pct(static_cast<double>(support_retry) /
                         deployment.size())
            << " (deployed: 0%, as in the wild)\n\n";

  // Probe the top Google/Facebook servers, like the paper's check on the
  // ten most frequently attacked servers.
  std::vector<net::Ipv4Address> targets;
  for (const auto& server : deployment.servers()) {
    if (server.asn == asdb::AsRegistry::kGoogle ||
        server.asn == asdb::AsRegistry::kFacebook) {
      targets.push_back(server.address);
      if (targets.size() == probes) break;
    }
  }
  scanner::RetryProber prober(deployment, seed);
  const auto observations = prober.probe_all(targets);
  util::Table table({"server", "reachable", "retry", "handshake", "RTs"});
  std::size_t retries_seen = 0;
  for (const auto& obs : observations) {
    table.add_row({obs.server.to_string(), obs.reachable ? "yes" : "no",
                   obs.received_retry ? "RETRY" : "-",
                   obs.handshake_completed ? "completed" : "-",
                   std::to_string(obs.round_trips)});
    if (obs.received_retry) ++retries_seen;
  }
  table.print(std::cout);
  std::cout << "RETRY messages received: " << retries_seen
            << " (paper: none from the top attacked servers)\n\n";

  // What-if: the operator of the first server enables RETRY.
  if (!targets.empty()) {
    deployment.set_retry_enabled(targets[0], true);
    scanner::RetryProber what_if(deployment, seed + 1);
    const auto obs = what_if.probe(targets[0]);
    std::cout << "what-if with RETRY enabled on " << targets[0].to_string()
              << ": retry=" << (obs.received_retry ? "yes" : "no")
              << " integrity="
              << (obs.retry_integrity_valid ? "valid" : "invalid")
              << " round-trips=" << obs.round_trips
              << " (cost: +1 RT before data)\n";
  }
  return 0;
}
